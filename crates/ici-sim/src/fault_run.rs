//! Failure-aware experiment runner.
//!
//! [`run_ici_under_faults`] drives an ICIStrategy deployment through a
//! deterministic [`FaultPlan`]: each round it applies the scheduled
//! restarts and crashes, installs the round's message-fault profile on
//! the send path, attempts to commit one block, and lets the surviving
//! cluster members re-replicate. With [`StageChurn`] enabled, selected
//! rounds additionally crash a verifier *between* lifecycle stages of
//! the proposal itself (see [`ici_core::StageBoundary`]), restarting it
//! once the proposal resolves. Recovery is verified at the content
//! level — every repaired cluster must pass the shard-level Merkle audit
//! ([`ici_core::merkle_audit`]), not merely report replicas present.
//!
//! Same seed ⇒ same plan ⇒ same commits, same repair traffic, same
//! summary, byte for byte — which is what lets CI assert on survivability
//! numbers and diff two runs of `e_fault` directly.

use ici_chain::block::BlockHeader;
use ici_chain::builder::BlockBuilder;
use ici_chain::genesis::GenesisConfig;
use ici_chain::transaction::Transaction;
use ici_consensus::leader::elect_live_leader;
use ici_consensus::pbft::VOTE_BYTES;
use ici_consensus::verdicts::{tally_votes, VerdictOutcome, VerifierVote};
use ici_core::config::IciConfig;
use ici_core::network::IciNetwork;
use ici_core::StageBoundary;
use ici_faults::plan::{
    ByzantineConfig, ChurnConfig, FaultError, FaultPlanConfig, MessageFaultSpec, PartitionPolicy,
    VerdictFault,
};
use ici_faults::scheduler::{FaultScheduler, ScheduledRound};
use ici_net::metrics::MessageKind;
use ici_net::node::NodeId;
use ici_workload::{WorkloadConfig, WorkloadGenerator};

use crate::latency::LatencyStats;
use crate::runner::{finish_series, sample_round};

/// Initial balance granted to each workload account at genesis.
const GENESIS_BALANCE: u64 = u64::MAX / 1_000_000;

/// Salt separating fault-mark trace ids from lifecycle stage ids.
const FAULT_MARK_SALT: u64 = 0xFA17_0000_0000_0001;

/// Salt seeding the stage-churn draw stream (independent of the plan's
/// streams, so enabling stage churn never perturbs the other faults).
const STAGE_CHURN_SALT: u64 = 0x57A6_EC4A_5400_0003;

/// Stage-boundary churn: on every `interval`-th round, crash one live
/// non-leader member of the proposing cluster at a seed-derived
/// lifecycle stage boundary ([`StageBoundary`]), then restart it (disk
/// intact) as soon as the proposal resolves — success or failure.
///
/// This exercises the staged lifecycle's liveness re-sync: forks
/// snapshot liveness at build time, and a crash landing *between*
/// stages must be adopted by every later stage. The draw depends only
/// on `(seed, round)`, so runs replay byte-identically at any thread
/// count. Inert by default (`interval == 0`), which keeps existing
/// crash-only profiles byte-stable.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StageChurn {
    /// Inject on rounds where `(round + 1) % interval == 0`;
    /// `0` disables stage churn entirely.
    pub interval: usize,
}

impl StageChurn {
    /// Whether this round draws a stage-boundary crash.
    fn fires(&self, round: usize) -> bool {
        self.interval > 0 && (round + 1) % self.interval == 0
    }
}

/// Picks the boundary a stage crash lands on from a seed-derived mix.
fn pick_boundary(mix: u64) -> StageBoundary {
    match mix % 3 {
        0 => StageBoundary::AfterBuild,
        1 => StageBoundary::AfterDistribute,
        _ => StageBoundary::AfterVerify,
    }
}

/// Chooses this round's stage-crash victim: a live non-leader member of
/// the proposing cluster, indexed by the seed-derived mix. `None` when
/// no cluster can propose or the leader is the only live member.
fn stage_churn_victim(network: &IciNetwork, mix: u64) -> Option<(NodeId, StageBoundary)> {
    let height = network.tip().height + 1;
    let home = network.proposer_cluster(height)?;
    let members = network.live_members(home);
    let parent_id = network.tip().id();
    let up = |n: NodeId| network.net().is_up(n);
    let leader = elect_live_leader(&parent_id, height, &members, up)?;
    let candidates: Vec<NodeId> = members.into_iter().filter(|m| *m != leader).collect();
    if candidates.is_empty() {
        return None;
    }
    let victim = candidates[(mix % candidates.len() as u64) as usize];
    Some((victim, pick_boundary(mix >> 32)))
}

/// Emits one `faults/<what>` instant per churn event so a trace viewer
/// shows crashes and restarts on the timeline of the node they hit.
fn mark_churn(network: &IciNetwork, name: &'static str, nodes: &[NodeId], round: usize) {
    if !ici_trace::enabled() {
        return;
    }
    let at_us = network.now().as_micros();
    for node in nodes {
        let cluster = network.membership().cluster_of(*node);
        ici_trace::mark(
            name,
            at_us,
            0,
            Some(u64::from(cluster.get())),
            Some(node.get()),
            ici_trace::derive_id(FAULT_MARK_SALT ^ round as u64, node.get()),
            0,
        );
    }
}

/// What one equivocation round produced.
struct EquivOutcome {
    /// Both audience halves held an honest live witness, so the
    /// conflicting headers met in the vote exchange.
    detected: bool,
    /// Dissemination plus cross-check traffic the twins burned.
    wasted_bytes: u64,
}

/// Models one equivocating proposal: the elected leader builds two
/// conflicting blocks for the next height (same parent, different
/// timestamp ⇒ different id) and shows each twin to a disjoint half of
/// its live cluster. The dissemination and the all-pairs vote exchange
/// are real metered sends; detection happens exactly when both halves
/// hold a witness, because the vote exchange crosses the halves and any
/// two members comparing headers see the conflict.
fn run_equivocation_round(
    network: &mut IciNetwork,
    batch: &[Transaction],
    round: usize,
) -> EquivOutcome {
    let height = network.tip().height + 1;
    let Some(home) = network.proposer_cluster(height) else {
        // No live proposer anywhere: nothing was disseminated, nothing
        // can conflict.
        return EquivOutcome {
            detected: true,
            wasted_bytes: 0,
        };
    };
    let members = network.live_members(home);
    let parent_id = network.tip().id();
    let leader = {
        let up = |n: NodeId| network.net().is_up(n);
        match elect_live_leader(&parent_id, height, &members, up) {
            Some(l) => l,
            None => {
                return EquivOutcome {
                    detected: true,
                    wasted_bytes: 0,
                }
            }
        }
    };
    if ici_trace::enabled() {
        let at_us = network.now().as_micros();
        ici_trace::mark(
            "byz/equivocation",
            at_us,
            height,
            Some(u64::from(home.get())),
            Some(leader.get()),
            ici_trace::derive_id(FAULT_MARK_SALT ^ 0xE9, round as u64 ^ leader.get()),
            0,
        );
    }

    // One twin is enough to size both: the bodies are identical, the
    // headers differ only in timestamp.
    let parent = *network.tip();
    let timestamp_ms = (parent.timestamp_ms + 1).max(network.now().as_millis());
    let mut builder =
        BlockBuilder::new(&parent, network.state().clone(), leader.get(), timestamp_ms);
    builder.fill(batch.to_vec());
    let twin = builder.seal();
    let body_bytes = twin.body_len() as u64;
    let header_bytes = BlockHeader::ENCODED_LEN as u64;
    let replication = network.config().replication;

    let audience: Vec<NodeId> = members.iter().copied().filter(|m| *m != leader).collect();
    let half_a = &audience[..audience.len() / 2];
    let half_b = &audience[audience.len() / 2..];

    let before = network.net().meter().total().bytes;
    for half in [half_a, half_b] {
        for (i, member) in half.iter().enumerate() {
            let (kind, bytes) = if i < replication {
                (MessageKind::BlockBody, header_bytes + body_bytes)
            } else {
                (MessageKind::BlockHeader, header_bytes)
            };
            let _ = network.net_mut().send(leader, *member, kind, bytes);
        }
    }
    // The vote exchange crosses the audience halves — this is where two
    // conflicting headers for one height meet and the fraud surfaces.
    for from in &audience {
        for to in &audience {
            if from != to {
                let _ = network
                    .net_mut()
                    .send(*from, *to, MessageKind::Vote, VOTE_BYTES);
            }
        }
    }
    let wasted_bytes = network.net().meter().total().bytes - before;

    EquivOutcome {
        detected: !half_a.is_empty() && !half_b.is_empty(),
        wasted_bytes,
    }
}

/// Per-round effect of scheduled verdict faults, computed with the real
/// quorum arithmetic over each cluster's live membership.
struct VerdictRoundEffect {
    /// The proposer cluster cannot reach an accept quorum: the round
    /// stalls before the commit.
    home_stalled: bool,
    /// Remote clusters whose verdict quorum failed (the commit proceeds;
    /// those clusters' dissemination was wasted on a stalled verdict).
    missed_remote: usize,
}

/// Tallies each cluster's verdict round for an honest block under the
/// scheduled flips and withholds, updating the summary's lie accounting.
/// Honest members vote `Accept` (the workload's blocks are valid); every
/// false reject in a cluster with at least one honest member is exposed
/// by slice re-verification (see
/// `IciNetwork::collaborative_verify_with_faults`, which implements the
/// same rule at the block level).
fn apply_verdict_faults(
    network: &IciNetwork,
    round: &ScheduledRound,
    summary: &mut FaultRunSummary,
) -> VerdictRoundEffect {
    let mut effect = VerdictRoundEffect {
        home_stalled: false,
        missed_remote: 0,
    };
    if round.verdict_faults.is_empty() {
        return effect;
    }
    let height = network.tip().height + 1;
    let home = network.proposer_cluster(height);
    for cluster in network.clusters() {
        let members = network.live_members(cluster);
        if members.is_empty() {
            continue;
        }
        let flips = round
            .verdict_faults
            .iter()
            .filter(|(n, k)| *k == VerdictFault::Flip && members.contains(n))
            .count();
        let withholds = round
            .verdict_faults
            .iter()
            .filter(|(n, k)| *k == VerdictFault::Withhold && members.contains(n))
            .count();
        if flips == 0 && withholds == 0 {
            continue;
        }
        let honest = members.len() - flips - withholds;
        summary.verdict_flips += flips;
        summary.verdict_withholds += withholds;
        if honest > 0 {
            // Disputed rejects are re-verified and their authors named.
            summary.liars_detected += flips;
        }
        let votes = std::iter::repeat(VerifierVote::Accept)
            .take(honest)
            .chain(std::iter::repeat(VerifierVote::Reject).take(flips))
            .chain(std::iter::repeat(VerifierVote::Withhold).take(withholds));
        let outcome = tally_votes(votes, members.len()).outcome();
        if outcome != VerdictOutcome::Accepted {
            if Some(cluster) == home {
                effect.home_stalled = true;
            } else {
                effect.missed_remote += 1;
            }
        }
    }
    effect
}

/// Meters the traffic a stalled home-cluster verdict round wasted: the
/// leader's body/header distribution plus one all-pairs vote round that
/// failed to reach quorum.
fn charge_stalled_distribution(network: &mut IciNetwork, batch: &[Transaction]) -> u64 {
    let height = network.tip().height + 1;
    let Some(home) = network.proposer_cluster(height) else {
        return 0;
    };
    let members = network.live_members(home);
    let parent_id = network.tip().id();
    let leader = {
        let up = |n: NodeId| network.net().is_up(n);
        match elect_live_leader(&parent_id, height, &members, up) {
            Some(l) => l,
            None => return 0,
        }
    };
    let parent = *network.tip();
    let timestamp_ms = (parent.timestamp_ms + 1).max(network.now().as_millis());
    let mut builder =
        BlockBuilder::new(&parent, network.state().clone(), leader.get(), timestamp_ms);
    builder.fill(batch.to_vec());
    let block = builder.seal();
    let body_bytes = block.body_len() as u64;
    let header_bytes = BlockHeader::ENCODED_LEN as u64;
    let replication = network.config().replication;

    let before = network.net().meter().total().bytes;
    let mut owners = 0usize;
    for member in members.iter().filter(|m| **m != leader) {
        let (kind, bytes) = if owners < replication {
            owners += 1;
            (MessageKind::BlockBody, header_bytes + body_bytes)
        } else {
            (MessageKind::BlockHeader, header_bytes)
        };
        let _ = network.net_mut().send(leader, *member, kind, bytes);
    }
    for from in &members {
        for to in &members {
            if from != to {
                let _ = network
                    .net_mut()
                    .send(*from, *to, MessageKind::Vote, VOTE_BYTES);
            }
        }
    }
    network.net().meter().total().bytes - before
}

/// The fault schedule's knobs, bundled so experiment binaries can cite
/// one profile per run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultProfile {
    /// Seed of the fault schedule (independent of the network seed).
    pub seed: u64,
    /// Rounds to run; each round proposes one block.
    pub rounds: usize,
    /// Node churn parameters.
    pub churn: ChurnConfig,
    /// Partition-window parameters.
    pub partitions: PartitionPolicy,
    /// Message-level fault profile.
    pub messages: MessageFaultSpec,
    /// Byzantine-actor parameters (equivocating proposers, false-verdict
    /// verifiers). Inert by default and drawn from a dedicated stream, so
    /// crash-only profiles replay byte-identically.
    pub byzantine: ByzantineConfig,
    /// Stage-boundary churn (crashes landing *inside* a proposal, between
    /// lifecycle stages). Inert by default and drawn from a dedicated
    /// salt, so profiles without it replay byte-identically.
    pub stage_churn: StageChurn,
}

impl Default for FaultProfile {
    /// Default churn over 12 rounds with no partitions or message faults.
    fn default() -> FaultProfile {
        FaultProfile {
            seed: 1,
            rounds: 12,
            churn: ChurnConfig::default(),
            partitions: PartitionPolicy::default(),
            messages: MessageFaultSpec::default(),
            byzantine: ByzantineConfig::default(),
            stage_churn: StageChurn::default(),
        }
    }
}

/// One fault run, reduced to the survivability quantities `e_fault`
/// tables report.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRunSummary {
    /// Nodes simulated.
    pub nodes: usize,
    /// Clusters formed.
    pub clusters: usize,
    /// Rounds executed (== the plan's length).
    pub rounds: usize,
    /// Blocks committed despite the faults (excluding genesis).
    pub committed_blocks: u64,
    /// Rounds whose proposal failed (no quorum / partitioned leader); the
    /// batch is retried next round, so these measure liveness loss only.
    pub skipped_rounds: usize,
    /// Crash events applied.
    pub crash_events: usize,
    /// Restart events applied.
    pub restart_events: usize,
    /// Crashes injected *between* lifecycle stages of a proposal
    /// (see [`StageChurn`]); each is restarted once the proposal
    /// resolves and its cluster repaired the same round.
    pub stage_crash_events: usize,
    /// Stage-crash rounds whose proposal still committed (the quorum
    /// margin absorbed the mid-round loss).
    pub stage_crash_commits: usize,
    /// Completed crash-and-recover cycles per cluster (from the plan).
    pub cycles_per_cluster: Vec<usize>,
    /// Cluster repairs attempted after churn rounds.
    pub recovery_attempts: usize,
    /// Repairs that restored the cluster *and* passed the shard-level
    /// Merkle audit afterwards.
    pub recovery_successes: usize,
    /// Intra- and cross-cluster repair transfers executed.
    pub repair_transfers: usize,
    /// Re-replication traffic in bytes (metered as repair).
    pub repair_bytes: u64,
    /// Heights restored by fetching from a foreign cluster.
    pub cross_cluster_fetches: usize,
    /// Heights no live node anywhere still held (permanent loss).
    pub unrecoverable_heights: Vec<u64>,
    /// Fewest live nodes observed at any round start.
    pub min_live_nodes: usize,
    /// Worst per-cluster availability observed after any round's repairs.
    pub min_availability: f64,
    /// Whether every cluster's final shard-level Merkle audit was clean.
    pub final_audit_clean: bool,
    /// Body replicas re-hashed by the final audit.
    pub merkle_shards_verified: usize,
    /// Commit latency over the committed blocks.
    pub commit_latency: LatencyStats,
    /// Rounds in which the elected proposer equivocated (two conflicting
    /// blocks for the height, shown to disjoint audience halves).
    pub equivocation_attempts: usize,
    /// Equivocations exposed by the cross-audience vote exchange (both
    /// halves held at least one honest live witness).
    pub equivocations_detected: usize,
    /// Equivocations that went *undetected* — one audience had no honest
    /// witness, so a conflicting branch could have survived. The run
    /// still refuses to commit either twin; this counts the hazard.
    pub safety_breaches: usize,
    /// Verdicts flipped by live Byzantine verifiers across all clusters.
    pub verdict_flips: usize,
    /// Verdicts withheld by live Byzantine verifiers across all clusters.
    pub verdict_withholds: usize,
    /// Lying verifiers exposed by honest slice re-verification (a false
    /// reject about a clean slice always names its author).
    pub liars_detected: usize,
    /// Rounds lost to Byzantine action (equivocation or a stalled home
    /// cluster); a subset of `skipped_rounds`.
    pub byz_skipped_rounds: usize,
    /// Remote clusters whose verdict quorum failed under lying/withheld
    /// verdicts in otherwise-committed rounds.
    pub byz_missed_cluster_verdicts: usize,
    /// Bytes spent disseminating blocks that Byzantine action then killed
    /// (equivocating twins, stalled home-cluster distributions).
    pub wasted_bytes: u64,
    /// FNV-1a fingerprint of the plan's canonical rendering.
    pub plan_fingerprint: u64,
    /// The plan's canonical rendering (for replay diffing).
    pub plan_render: String,
}

impl FaultRunSummary {
    /// Fraction of repair attempts that fully recovered, in `[0, 1]`
    /// (1.0 when nothing needed repair).
    pub fn recovery_success_rate(&self) -> f64 {
        if self.recovery_attempts == 0 {
            1.0
        } else {
            self.recovery_successes as f64 / self.recovery_attempts as f64
        }
    }

    /// Fraction of equivocation attempts exposed, in `[0, 1]` (1.0 when
    /// none were attempted).
    pub fn equivocation_detection_rate(&self) -> f64 {
        if self.equivocation_attempts == 0 {
            1.0
        } else {
            self.equivocations_detected as f64 / self.equivocation_attempts as f64
        }
    }

    /// Fraction of flipped verdicts whose author was exposed, in `[0, 1]`
    /// (1.0 when nobody flipped).
    pub fn liar_detection_rate(&self) -> f64 {
        if self.verdict_flips == 0 {
            1.0
        } else {
            self.liars_detected as f64 / self.verdict_flips as f64
        }
    }
}

/// Runs ICIStrategy under the given fault profile.
///
/// The network is built from `config` (its genesis is replaced by one
/// derived from the workload), the fault plan is built over the actual
/// cluster map, and each round proposes one `txs_per_block` block. A
/// failed proposal (partitioned leader, no quorum) retries the same
/// batch next round, so account nonces stay sequential.
///
/// # Errors
///
/// [`FaultError`] if the profile cannot produce a valid plan for the
/// network's cluster map (e.g. the live floor exceeds a cluster).
///
/// # Panics
///
/// Panics if `config` itself is invalid — misconfiguration, not a fault.
pub fn run_ici_under_faults(
    mut config: IciConfig,
    txs_per_block: usize,
    workload: WorkloadConfig,
    profile: FaultProfile,
) -> Result<(IciNetwork, FaultRunSummary), FaultError> {
    let _span = ici_telemetry::span!("sim/run_ici_faults");
    config.genesis = GenesisConfig::uniform(workload.accounts, GENESIS_BALANCE);
    let mut network = IciNetwork::new(config).expect("valid configuration");

    // The plan is built over the clusters the network actually formed.
    let cluster_map: Vec<Vec<NodeId>> = network
        .clusters()
        .into_iter()
        .map(|c| network.membership().active_members(c))
        .collect();
    let plan = FaultPlanConfig::new(profile.seed, profile.rounds, cluster_map)
        .churn(profile.churn)
        .partitions(profile.partitions)
        .messages(profile.messages)
        .byzantine(profile.byzantine)
        .build()?;
    let plan_render = plan.render();
    let plan_fingerprint = plan.fingerprint();
    let cycles_per_cluster = plan.cycles_per_cluster();
    let mut scheduler = FaultScheduler::new(plan);

    let mut generator = WorkloadGenerator::new(workload);
    let mut pending: Option<Vec<ici_chain::Transaction>> = None;
    let sampling = ici_telemetry::enabled();
    let mut samples = Vec::new();
    let mut tracker = ici_trace::series::TrafficTracker::new();
    let mut generated_txs = 0u64;
    let mut committed_txs = 0u64;
    let mut summary = FaultRunSummary {
        nodes: network.config().nodes,
        clusters: network.clusters().len(),
        rounds: profile.rounds,
        committed_blocks: 0,
        skipped_rounds: 0,
        crash_events: 0,
        restart_events: 0,
        stage_crash_events: 0,
        stage_crash_commits: 0,
        cycles_per_cluster,
        recovery_attempts: 0,
        recovery_successes: 0,
        repair_transfers: 0,
        repair_bytes: 0,
        cross_cluster_fetches: 0,
        unrecoverable_heights: Vec::new(),
        min_live_nodes: network.config().nodes,
        min_availability: 1.0,
        final_audit_clean: false,
        merkle_shards_verified: 0,
        commit_latency: LatencyStats::from_durations(std::iter::empty()),
        equivocation_attempts: 0,
        equivocations_detected: 0,
        safety_breaches: 0,
        verdict_flips: 0,
        verdict_withholds: 0,
        liars_detected: 0,
        byz_skipped_rounds: 0,
        byz_missed_cluster_verdicts: 0,
        wasted_bytes: 0,
        plan_fingerprint,
        plan_render,
    };

    while let Some(round) = scheduler.step() {
        // 1. Apply the scheduled churn (restarts come back disk-intact).
        mark_churn(&network, "faults/restart", &round.restarts, round.round);
        for node in &round.restarts {
            let _ = network.recover_node(*node);
        }
        mark_churn(&network, "faults/crash", &round.crashes, round.round);
        for node in &round.crashes {
            let _ = network.crash_node(*node);
        }
        summary.restart_events += round.restarts.len();
        summary.crash_events += round.crashes.len();
        summary.min_live_nodes = summary.min_live_nodes.min(round.live_nodes);

        // 2. Install this round's message faults on the send path.
        network.net_mut().set_faults(round.message_faults.clone());

        // 3. One block proposal; a failed commit retries the same batch.
        //    Byzantine action degrades this step: an equivocating
        //    proposer burns the round (and real dissemination bandwidth)
        //    outright, and lying/withholding verifiers can stall the home
        //    cluster's verdict quorum before the commit is attempted.
        let batch = pending.take().unwrap_or_else(|| {
            let fresh = generator.batch(txs_per_block);
            generated_txs += fresh.len() as u64;
            fresh
        });
        let mut stage_victims: Vec<NodeId> = Vec::new();
        if round.equivocation {
            let outcome = run_equivocation_round(&mut network, &batch, round.round);
            summary.equivocation_attempts += 1;
            summary.wasted_bytes += outcome.wasted_bytes;
            if outcome.detected {
                summary.equivocations_detected += 1;
            } else {
                summary.safety_breaches += 1;
            }
            // Neither twin ever commits: a detected equivocation is
            // discarded, an undetected one is counted as a breach above.
            summary.skipped_rounds += 1;
            summary.byz_skipped_rounds += 1;
            pending = Some(batch);
        } else {
            let verdicts = apply_verdict_faults(&network, &round, &mut summary);
            if verdicts.home_stalled {
                // The leader had already distributed the block before the
                // cluster's verdict round stalled — that traffic is the
                // liars' bandwidth cost.
                summary.wasted_bytes += charge_stalled_distribution(&mut network, &batch);
                summary.skipped_rounds += 1;
                summary.byz_skipped_rounds += 1;
                pending = Some(batch);
            } else {
                summary.byz_missed_cluster_verdicts += verdicts.missed_remote;
                // A stage-churn round crashes its victim mid-proposal at
                // the drawn boundary and restarts it right after the
                // proposal resolves — success or failure — so the crash
                // is visible to exactly the stages past the boundary.
                let stage_hit = if profile.stage_churn.fires(round.round) {
                    let mix =
                        ici_trace::derive_id(profile.seed ^ STAGE_CHURN_SALT, round.round as u64);
                    stage_churn_victim(&network, mix)
                } else {
                    None
                };
                let proposed = match stage_hit {
                    Some((victim, boundary)) => {
                        summary.stage_crash_events += 1;
                        stage_victims.push(victim);
                        mark_churn(&network, "faults/stage_crash", &[victim], round.round);
                        let outcome = network
                            .propose_block_staged(batch.clone(), |stage, sim| {
                                if stage == boundary {
                                    sim.crash(victim);
                                }
                            })
                            .map(|record| record.height);
                        let _ = network.recover_node(victim);
                        mark_churn(&network, "faults/stage_restart", &[victim], round.round);
                        if outcome.is_ok() {
                            summary.stage_crash_commits += 1;
                        }
                        outcome
                    }
                    None => network
                        .propose_block(batch.clone())
                        .map(|record| record.height),
                };
                match proposed {
                    Ok(_) => {
                        summary.committed_blocks += 1;
                        committed_txs += batch.len() as u64;
                    }
                    Err(_) => {
                        summary.skipped_rounds += 1;
                        pending = Some(batch);
                    }
                }
            }
        }

        // 4. Survivors re-replicate every cluster touched by churn, and
        //    the shard-level Merkle audit certifies each repair.
        let mut affected: Vec<_> = round
            .crashes
            .iter()
            .chain(&round.restarts)
            .chain(&stage_victims)
            .map(|n| network.membership().cluster_of(*n))
            .collect();
        affected.sort_unstable_by_key(|c| c.get());
        affected.dedup();
        for cluster in affected {
            summary.recovery_attempts += 1;
            let report = network.repair_cluster(cluster);
            summary.repair_transfers += report.transfers;
            summary.repair_bytes += report.bytes;
            summary.cross_cluster_fetches += report.cross_cluster_fetches.len();
            let audit = network.merkle_audit(cluster);
            if report.unrecoverable.is_empty() && audit.is_clean() {
                summary.recovery_successes += 1;
            } else {
                summary
                    .unrecoverable_heights
                    .extend(report.unrecoverable.iter().copied());
            }
        }

        // 5. Track the worst availability the network sank to.
        for audit in network.audit_all() {
            summary.min_availability = summary.min_availability.min(audit.availability());
        }

        // 6. Per-round survivability sample, taken after repairs so the
        //    stored-bytes snapshot reflects the round's healed state.
        if sampling {
            sample_round(
                &mut samples,
                &mut tracker,
                round.round as u64,
                network.commit_log().last().map_or(0, |r| r.height),
                network.now().as_micros(),
                committed_txs,
                generated_txs,
                round.live_nodes as u64,
                network.storage_bytes(),
                network.net().meter(),
            );
        }
    }
    finish_series("ICIStrategy+faults", summary.nodes, samples);

    // Faults end with the plan; a final repair pass heals anything the
    // last round left degraded, then the audit rules on the whole run.
    network.net_mut().clear_faults();
    for report in network.repair_all() {
        summary.repair_transfers += report.transfers;
        summary.repair_bytes += report.bytes;
        summary.cross_cluster_fetches += report.cross_cluster_fetches.len();
        summary
            .unrecoverable_heights
            .extend(report.unrecoverable.iter().copied());
    }
    summary.unrecoverable_heights.sort_unstable();
    summary.unrecoverable_heights.dedup();

    let final_audits = network.merkle_audit_all();
    summary.final_audit_clean = final_audits.iter().all(|a| a.is_clean());
    summary.merkle_shards_verified = final_audits.iter().map(|a| a.shards_verified).sum();
    summary.commit_latency =
        LatencyStats::from_durations(network.commit_log().iter().map(|r| r.commit_latency()));

    ici_telemetry::counter_add(
        "sim/fault_repair_bytes",
        ici_telemetry::Label::Global,
        summary.repair_bytes,
    );
    ici_telemetry::counter_add(
        "faults/equivocations",
        ici_telemetry::Label::Global,
        summary.equivocation_attempts as u64,
    );
    ici_telemetry::counter_add(
        "faults/equivocations_detected",
        ici_telemetry::Label::Global,
        summary.equivocations_detected as u64,
    );
    ici_telemetry::counter_add(
        "faults/verdict_flips",
        ici_telemetry::Label::Global,
        summary.verdict_flips as u64,
    );
    ici_telemetry::counter_add(
        "faults/liars_detected",
        ici_telemetry::Label::Global,
        summary.liars_detected as u64,
    );
    ici_telemetry::counter_add(
        "sim/byz_wasted_bytes",
        ici_telemetry::Label::Global,
        summary.wasted_bytes,
    );
    network.net().meter().publish_telemetry();
    Ok((network, summary))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_net::link::LinkModel;

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 32,
            ..WorkloadConfig::default()
        }
    }

    fn quiet_link() -> LinkModel {
        LinkModel {
            max_jitter_ms: 0.0,
            ..LinkModel::default()
        }
    }

    fn config() -> IciConfig {
        IciConfig::builder()
            .nodes(24)
            .cluster_size(8)
            .replication(2)
            .link(quiet_link())
            .seed(7)
            .build()
            .expect("valid")
    }

    fn profile(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            rounds: 10,
            churn: ChurnConfig {
                crash_prob: 0.08,
                restart_prob: 0.4,
                cluster_churn_prob: 0.0,
                min_live_per_cluster: 3,
                ..ChurnConfig::default()
            },
            ..FaultProfile::default()
        }
    }

    #[test]
    fn faulted_run_commits_and_recovers() {
        let (network, summary) =
            run_ici_under_faults(config(), 5, workload(), profile(3)).expect("plan builds");
        assert_eq!(summary.rounds, 10);
        assert!(summary.crash_events > 0, "{}", summary.plan_render);
        assert!(summary.committed_blocks + summary.skipped_rounds as u64 == 10);
        assert!(summary.recovery_attempts > 0);
        assert_eq!(summary.recovery_success_rate(), 1.0, "{summary:?}");
        assert!(summary.final_audit_clean);
        assert!(summary.unrecoverable_heights.is_empty());
        assert!(summary.min_live_nodes < 24);
        assert!(network.chain_len() > 1);
    }

    #[test]
    fn same_seed_same_fault_summary() {
        let (_, a) = run_ici_under_faults(config(), 4, workload(), profile(11)).expect("plan");
        let (_, b) = run_ici_under_faults(config(), 4, workload(), profile(11)).expect("plan");
        assert_eq!(a, b);
        let (_, c) = run_ici_under_faults(config(), 4, workload(), profile(12)).expect("plan");
        assert_ne!(a.plan_render, c.plan_render);
    }

    #[test]
    fn fault_summary_is_thread_count_invariant_under_jitter() {
        let jittery = IciConfig::builder()
            .nodes(24)
            .cluster_size(8)
            .replication(2)
            .seed(7)
            .build()
            .expect("valid");
        ici_par::set_threads(1);
        let (_, serial) =
            run_ici_under_faults(jittery.clone(), 4, workload(), profile(11)).expect("plan");
        ici_par::set_threads(4);
        let (_, parallel) =
            run_ici_under_faults(jittery, 4, workload(), profile(11)).expect("plan");
        assert_eq!(serial, parallel, "fault run must not depend on threads");
    }

    #[test]
    fn guaranteed_cycles_cover_every_cluster() {
        let (_, summary) = run_ici_under_faults(config(), 4, workload(), profile(5)).expect("plan");
        assert_eq!(summary.cycles_per_cluster.len(), summary.clusters);
        assert!(summary.cycles_per_cluster.iter().all(|c| *c >= 1));
    }

    #[test]
    fn churn_events_become_trace_marks() {
        ici_trace::set_enabled(true);
        ici_trace::reset();
        let (_, summary) =
            run_ici_under_faults(config(), 4, workload(), profile(3)).expect("plan builds");
        let snap = ici_trace::snapshot();
        ici_trace::set_enabled(false);
        ici_trace::reset();
        let crashes: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.name == "faults/crash")
            .collect();
        assert_eq!(crashes.len(), summary.crash_events, "one mark per crash");
        for mark in crashes {
            assert_eq!(mark.kind, ici_trace::TraceKind::Mark);
            assert!(mark.node.is_some() && mark.cluster.is_some());
            assert_ne!(mark.id, 0);
        }
        assert_eq!(
            snap.events
                .iter()
                .filter(|e| e.name == "faults/restart")
                .count(),
            summary.restart_events
        );
    }

    fn byz_profile(seed: u64) -> FaultProfile {
        FaultProfile {
            byzantine: ByzantineConfig {
                equivocation_prob: 0.3,
                false_verdict_fraction: 0.25,
                flip_prob: 0.35,
                withhold_prob: 0.15,
            },
            ..profile(seed)
        }
    }

    #[test]
    fn crash_only_profiles_report_no_byzantine_activity() {
        let (_, summary) = run_ici_under_faults(config(), 4, workload(), profile(3)).expect("plan");
        assert_eq!(summary.equivocation_attempts, 0);
        assert_eq!(summary.verdict_flips + summary.verdict_withholds, 0);
        assert_eq!(summary.wasted_bytes, 0);
        assert_eq!(summary.equivocation_detection_rate(), 1.0);
        assert_eq!(summary.liar_detection_rate(), 1.0);
    }

    #[test]
    fn byzantine_run_detects_every_equivocation_and_stays_clean() {
        let (network, summary) =
            run_ici_under_faults(config(), 5, workload(), byz_profile(23)).expect("plan");
        assert!(summary.equivocation_attempts > 0, "{}", summary.plan_render);
        // 8-member clusters with a floor of 3 live: both audience halves
        // always hold an honest witness, so detection is total and no
        // forged branch survives.
        assert_eq!(summary.equivocation_detection_rate(), 1.0, "{summary:?}");
        assert_eq!(summary.safety_breaches, 0);
        assert!(summary.wasted_bytes > 0, "equivocation burns bandwidth");
        assert_eq!(
            summary.committed_blocks + summary.skipped_rounds as u64,
            summary.rounds as u64
        );
        assert!(summary.byz_skipped_rounds >= summary.equivocation_attempts);
        assert!(summary.final_audit_clean, "{summary:?}");
        assert!(network.chain_len() > 1, "liveness survives the liars");
    }

    #[test]
    fn byzantine_run_is_deterministic() {
        let (_, a) = run_ici_under_faults(config(), 4, workload(), byz_profile(29)).expect("plan");
        let (_, b) = run_ici_under_faults(config(), 4, workload(), byz_profile(29)).expect("plan");
        assert_eq!(a, b);
    }

    #[test]
    fn byzantine_summary_is_thread_count_invariant() {
        let jittery = IciConfig::builder()
            .nodes(24)
            .cluster_size(8)
            .replication(2)
            .seed(7)
            .build()
            .expect("valid");
        ici_par::set_threads(1);
        let (_, serial) =
            run_ici_under_faults(jittery.clone(), 4, workload(), byz_profile(29)).expect("plan");
        ici_par::set_threads(4);
        let (_, parallel) =
            run_ici_under_faults(jittery, 4, workload(), byz_profile(29)).expect("plan");
        assert_eq!(serial, parallel, "byz run must not depend on threads");
    }

    #[test]
    fn heavy_flipping_stalls_rounds_but_liars_are_named() {
        let flood = FaultProfile {
            byzantine: ByzantineConfig {
                equivocation_prob: 0.0,
                false_verdict_fraction: 0.4,
                flip_prob: 1.0,
                withhold_prob: 0.0,
            },
            ..profile(13)
        };
        let (_, summary) = run_ici_under_faults(config(), 4, workload(), flood).expect("plan");
        assert!(summary.verdict_flips > 0);
        assert!(
            summary.byz_skipped_rounds > 0,
            "3-of-8 flipping must stall some home verdicts: {summary:?}"
        );
        // Every false reject lands in a cluster with honest members, so
        // every liar is exposed.
        assert_eq!(summary.liar_detection_rate(), 1.0, "{summary:?}");
        assert!(summary.wasted_bytes > 0);
        assert!(summary.final_audit_clean);
    }

    fn stage_profile(seed: u64) -> FaultProfile {
        FaultProfile {
            stage_churn: StageChurn { interval: 2 },
            ..profile(seed)
        }
    }

    #[test]
    fn stage_churn_rounds_recover_and_stay_auditable() {
        let (network, summary) =
            run_ici_under_faults(config(), 4, workload(), stage_profile(3)).expect("plan");
        assert!(summary.stage_crash_events > 0, "{}", summary.plan_render);
        assert!(summary.stage_crash_commits <= summary.stage_crash_events);
        // Every mid-proposal crash is restarted and its cluster repaired
        // the same round, so nothing stays degraded or lost.
        assert_eq!(summary.recovery_success_rate(), 1.0, "{summary:?}");
        assert!(summary.final_audit_clean, "{summary:?}");
        assert!(summary.unrecoverable_heights.is_empty());
        assert_eq!(
            summary.committed_blocks + summary.skipped_rounds as u64,
            summary.rounds as u64
        );
        assert!(network.chain_len() > 1, "liveness survives stage churn");
    }

    #[test]
    fn stage_churn_is_deterministic_and_thread_invariant() {
        let jittery = IciConfig::builder()
            .nodes(24)
            .cluster_size(8)
            .replication(2)
            .seed(7)
            .build()
            .expect("valid");
        ici_par::set_threads(1);
        let (_, serial) =
            run_ici_under_faults(jittery.clone(), 4, workload(), stage_profile(11)).expect("plan");
        ici_par::set_threads(4);
        let (_, parallel) =
            run_ici_under_faults(jittery, 4, workload(), stage_profile(11)).expect("plan");
        assert_eq!(serial, parallel, "stage churn must not depend on threads");
    }

    #[test]
    fn inert_stage_churn_leaves_crash_only_runs_byte_stable() {
        let (_, plain) = run_ici_under_faults(config(), 4, workload(), profile(11)).expect("plan");
        let explicit = FaultProfile {
            stage_churn: StageChurn { interval: 0 },
            ..profile(11)
        };
        let (_, zeroed) = run_ici_under_faults(config(), 4, workload(), explicit).expect("plan");
        assert_eq!(plain, zeroed);
        assert_eq!(plain.stage_crash_events, 0);
    }

    #[test]
    fn impossible_floor_is_a_typed_error() {
        let bad = FaultProfile {
            churn: ChurnConfig {
                min_live_per_cluster: 100,
                ..ChurnConfig::default()
            },
            ..FaultProfile::default()
        };
        assert!(matches!(
            run_ici_under_faults(config(), 4, workload(), bad),
            Err(FaultError::MinLiveTooHigh { .. })
        ));
    }

    #[test]
    fn message_faults_still_converge() {
        let lossy = FaultProfile {
            messages: MessageFaultSpec {
                drop_prob: 0.1,
                dup_prob: 0.05,
                delay_prob: 0.1,
                max_extra_delay_ms: 20.0,
            },
            ..profile(9)
        };
        let (_, summary) = run_ici_under_faults(config(), 4, workload(), lossy).expect("plan");
        assert!(summary.final_audit_clean, "{summary:?}");
        assert_eq!(summary.recovery_success_rate(), 1.0);
    }
}
