//! Baseline survivability runners — the same fault plans, other systems.
//!
//! [`run_full_under_faults`] and [`run_rapidchain_under_faults`] drive the
//! full-replication and RapidChain baselines through exactly the
//! deterministic [`ici_faults::plan::FaultPlan`] machinery that
//! [`crate::fault_run::run_ici_under_faults`] uses, so `e_byz` can put
//! ICIStrategy's survivability next to the comparators without changing
//! the adversary between columns: same seed, same churn draws, same
//! Byzantine designations.
//!
//! What differs is how each system *experiences* the plan:
//!
//! * **Full replication** is one plan cluster spanning the network.
//!   Equivocating proposers flood conflicting twins to disjoint halves of
//!   the live population; the gossip relay ring crosses the halves, so
//!   detection needs an honest witness on each side. Scheduled verdict
//!   faults are **inert** — every node validates every block solo, so
//!   there is no collaborative verdict round to corrupt. That asymmetry
//!   is the point of the comparison, not a gap in it.
//! * **RapidChain** maps plan clusters onto committees. Rounds visit
//!   committees round-robin; the active committee's scheduled liars vote
//!   in its BFT verdict round (members hold the full shard block, so a
//!   false reject is transparent to every honest member), and an
//!   equivocating committee leader splits its committee instead of the
//!   whole network. Liars scheduled in idle committees do nothing that
//!   round, exactly as a lying verifier with no block to vote on.
//!
//! Twin blocks in the baseline runners are charged by encoded
//! transaction bytes rather than built against the private shard state —
//! a documented modelling substitution that keeps the traffic honest
//! without widening the baselines' APIs. All draws come from the plan,
//! all sends are metered on the main thread: same seed ⇒ byte-identical
//! summary at any `ICI_PAR_THREADS`.

use ici_baselines::full::{FullConfig, FullReplicationNetwork};
use ici_baselines::rapidchain::{RapidChainConfig, RapidChainNetwork};
use ici_chain::block::BlockHeader;
use ici_chain::codec::Encode;
use ici_chain::genesis::GenesisConfig;
use ici_chain::transaction::Transaction;
use ici_consensus::leader::elect_live_leader;
use ici_consensus::pbft::VOTE_BYTES;
use ici_consensus::verdicts::{tally_votes, VerdictOutcome, VerifierVote};
use ici_faults::plan::{FaultError, FaultPlanConfig, VerdictFault};
use ici_faults::scheduler::{FaultScheduler, ScheduledRound};
use ici_net::metrics::MessageKind;
use ici_net::network::Network;
use ici_net::node::NodeId;
use ici_workload::{WorkloadConfig, WorkloadGenerator};

use crate::fault_run::FaultProfile;

/// Initial balance granted to each workload account at genesis.
const GENESIS_BALANCE: u64 = u64::MAX / 1_000_000;

/// One baseline fault run, reduced to the survivability quantities the
/// `e_byz` comparison tables report.
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineFaultSummary {
    /// Which baseline ran (`"full"` or `"rapidchain"`).
    pub strategy: &'static str,
    /// Nodes simulated.
    pub nodes: usize,
    /// Plan clusters: 1 for full replication, committees for RapidChain.
    pub groups: usize,
    /// Rounds executed (== the plan's length).
    pub rounds: usize,
    /// Blocks committed despite the faults (excluding genesis).
    pub committed_blocks: u64,
    /// Rounds whose proposal failed or was burned by Byzantine action;
    /// the batch retries next visit, so these measure liveness loss only.
    pub skipped_rounds: usize,
    /// Crash events applied.
    pub crash_events: usize,
    /// Restart events applied.
    pub restart_events: usize,
    /// Fewest live nodes observed at any round start.
    pub min_live_nodes: usize,
    /// Rounds in which the elected proposer equivocated.
    pub equivocation_attempts: usize,
    /// Equivocations exposed by cross-half relay (both audience halves
    /// held at least one honest live witness).
    pub equivocations_detected: usize,
    /// Equivocations that went undetected — a conflicting branch could
    /// have survived. Neither twin is ever committed; this is the hazard
    /// count.
    pub safety_breaches: usize,
    /// Verdicts flipped by live Byzantine verifiers in active committees
    /// (always 0 for full replication — solo validation has no verdicts).
    pub verdict_flips: usize,
    /// Verdicts withheld by live Byzantine verifiers in active committees.
    pub verdict_withholds: usize,
    /// Lying verifiers exposed by honest members (everyone holds the full
    /// block, so a false reject names its author whenever any honest
    /// member is live).
    pub liars_detected: usize,
    /// Rounds lost to Byzantine action; a subset of `skipped_rounds`.
    pub byz_skipped_rounds: usize,
    /// Bytes spent disseminating blocks that Byzantine action then killed.
    pub wasted_bytes: u64,
    /// Total bytes the run put on the wire (wasted included).
    pub total_bytes: u64,
    /// FNV-1a fingerprint of the plan's canonical rendering.
    pub plan_fingerprint: u64,
    /// The plan's canonical rendering (for replay diffing).
    pub plan_render: String,
}

impl BaselineFaultSummary {
    /// Fraction of equivocation attempts exposed, in `[0, 1]` (1.0 when
    /// none were attempted).
    pub fn equivocation_detection_rate(&self) -> f64 {
        if self.equivocation_attempts == 0 {
            1.0
        } else {
            self.equivocations_detected as f64 / self.equivocation_attempts as f64
        }
    }

    /// Fraction of flipped verdicts whose author was exposed, in `[0, 1]`
    /// (1.0 when nobody flipped).
    pub fn liar_detection_rate(&self) -> f64 {
        if self.verdict_flips == 0 {
            1.0
        } else {
            self.liars_detected as f64 / self.verdict_flips as f64
        }
    }

    /// Fraction of all wire bytes Byzantine action wasted, in `[0, 1]`.
    pub fn wasted_fraction(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.wasted_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Traffic one burned round produced.
struct ByzCharge {
    detected: bool,
    wasted_bytes: u64,
}

/// Encoded body size of a batch — the twin's payload, priced without
/// rebuilding the block against the baseline's private state.
fn batch_body_bytes(batch: &[Transaction]) -> u64 {
    batch.iter().map(|tx| tx.to_bytes().len() as u64).sum()
}

/// Disseminates conflicting twins to disjoint halves of `audience`
/// (each member receives a full block of `block_bytes`), then charges
/// the cross-half exchange: a relay ring for gossip systems
/// (`all_pairs = false`) or an all-pairs vote for BFT committees
/// (`all_pairs = true`). Detection requires an honest witness in *both*
/// halves — a lone audience sees only one twin and the fraud survives.
fn charge_equivocation(
    net: &mut Network,
    leader: NodeId,
    audience: &[NodeId],
    block_bytes: u64,
    all_pairs: bool,
) -> ByzCharge {
    let header_bytes = BlockHeader::ENCODED_LEN as u64;
    let half_a = &audience[..audience.len() / 2];
    let half_b = &audience[audience.len() / 2..];
    let before = net.meter().total().bytes;
    for half in [half_a, half_b] {
        for member in half {
            let _ = net.send(leader, *member, MessageKind::BlockFull, block_bytes);
        }
    }
    if all_pairs {
        for from in audience {
            for to in audience {
                if from != to {
                    let _ = net.send(*from, *to, MessageKind::Vote, VOTE_BYTES);
                }
            }
        }
    } else {
        for (i, from) in audience.iter().enumerate() {
            let to = audience[(i + 1) % audience.len()];
            if *from != to {
                let _ = net.send(*from, to, MessageKind::BlockHeader, header_bytes);
            }
        }
    }
    ByzCharge {
        detected: !half_a.is_empty() && !half_b.is_empty(),
        wasted_bytes: net.meter().total().bytes - before,
    }
}

/// Runs the full-replication baseline under the given fault profile.
///
/// The whole network forms one plan cluster; the churn floor, partition
/// windows, and Byzantine designations therefore draw over the entire
/// population. A failed or burned proposal retries the same batch next
/// round, so account nonces stay sequential.
///
/// # Errors
///
/// [`FaultError`] if the profile cannot produce a valid plan (e.g. the
/// live floor exceeds the node count).
pub fn run_full_under_faults(
    mut config: FullConfig,
    txs_per_block: usize,
    workload: WorkloadConfig,
    profile: FaultProfile,
) -> Result<(FullReplicationNetwork, BaselineFaultSummary), FaultError> {
    let _span = ici_telemetry::span!("sim/run_full_faults");
    config.genesis = GenesisConfig::uniform(workload.accounts, GENESIS_BALANCE);
    let mut network = FullReplicationNetwork::new(config);
    let all: Vec<NodeId> = (0..network.config().nodes as u64)
        .map(NodeId::new)
        .collect();

    let plan = FaultPlanConfig::new(profile.seed, profile.rounds, vec![all.clone()])
        .churn(profile.churn)
        .partitions(profile.partitions)
        .messages(profile.messages)
        .byzantine(profile.byzantine)
        .build()?;
    let mut summary = blank_summary(
        "full",
        all.len(),
        1,
        &plan.render(),
        plan.fingerprint(),
        profile.rounds,
    );
    let mut scheduler = FaultScheduler::new(plan);

    let mut generator = WorkloadGenerator::new(workload);
    let mut pending: Option<Vec<Transaction>> = None;
    while let Some(round) = scheduler.step() {
        apply_churn(network.net_mut(), &round, &mut summary);

        let batch = pending
            .take()
            .unwrap_or_else(|| generator.batch(txs_per_block));
        if round.equivocation {
            let charge = equivocate_full(&mut network, &batch, &all);
            record_equivocation(&mut summary, charge);
            pending = Some(batch);
        } else {
            // Solo validation: round.verdict_faults has no verdict round
            // to corrupt here. Deliberately ignored (see module docs).
            match network.propose_block(batch.clone()) {
                Some(_) => summary.committed_blocks += 1,
                None => {
                    summary.skipped_rounds += 1;
                    pending = Some(batch);
                }
            }
        }
    }
    network.net_mut().clear_faults();
    summary.total_bytes = network.net().meter().total().bytes;
    Ok((network, summary))
}

/// Runs the RapidChain baseline under the given fault profile.
///
/// Committees are the plan's clusters; rounds visit committees
/// round-robin (`shard = round % k`, as RapidChain interleaves shard
/// blocks). The active committee's scheduled liars vote in its verdict
/// round before the commit is attempted; an equivocating leader splits
/// the active committee. Each shard keeps its own workload generator and
/// retry slot, so nonces stay sequential per shard ledger.
///
/// # Errors
///
/// [`FaultError`] if the profile cannot produce a valid plan (e.g. the
/// live floor exceeds a committee).
pub fn run_rapidchain_under_faults(
    mut config: RapidChainConfig,
    txs_per_block: usize,
    workload: WorkloadConfig,
    profile: FaultProfile,
) -> Result<(RapidChainNetwork, BaselineFaultSummary), FaultError> {
    let _span = ici_telemetry::span!("sim/run_rapidchain_faults");
    config.genesis = GenesisConfig::uniform(workload.accounts, GENESIS_BALANCE);
    let mut network = RapidChainNetwork::new(config);
    let k = network.shard_count();
    let committees: Vec<Vec<NodeId>> = (0..k).map(|s| network.committee(s).to_vec()).collect();

    let plan = FaultPlanConfig::new(profile.seed, profile.rounds, committees.clone())
        .churn(profile.churn)
        .partitions(profile.partitions)
        .messages(profile.messages)
        .byzantine(profile.byzantine)
        .build()?;
    let mut summary = blank_summary(
        "rapidchain",
        network.config().nodes,
        k,
        &plan.render(),
        plan.fingerprint(),
        profile.rounds,
    );
    let mut scheduler = FaultScheduler::new(plan);

    let mut generators: Vec<WorkloadGenerator> = (0..k)
        .map(|_| WorkloadGenerator::new(workload.clone()))
        .collect();
    let mut pending: Vec<Option<Vec<Transaction>>> = vec![None; k];
    while let Some(round) = scheduler.step() {
        apply_churn(network.net_mut(), &round, &mut summary);

        let shard = round.round % k;
        let batch = pending[shard]
            .take()
            .unwrap_or_else(|| generators[shard].batch(txs_per_block));
        if round.equivocation {
            let charge = equivocate_rapidchain(&mut network, &batch, shard, &committees[shard]);
            record_equivocation(&mut summary, charge);
            pending[shard] = Some(batch);
        } else if committee_verdict_stalls(
            &network,
            &round,
            shard,
            &committees[shard],
            &mut summary,
        ) {
            // The leader distributed the shard block before the verdict
            // stalled — that dissemination is the liars' bandwidth bill.
            summary.wasted_bytes +=
                charge_stalled_committee(&mut network, &batch, shard, &committees[shard]);
            summary.skipped_rounds += 1;
            summary.byz_skipped_rounds += 1;
            pending[shard] = Some(batch);
        } else {
            match network.propose_block(shard, batch.clone()) {
                Some(_) => summary.committed_blocks += 1,
                None => {
                    summary.skipped_rounds += 1;
                    pending[shard] = Some(batch);
                }
            }
        }
    }
    network.net_mut().clear_faults();
    summary.total_bytes = network.net().meter().total().bytes;
    Ok((network, summary))
}

fn blank_summary(
    strategy: &'static str,
    nodes: usize,
    groups: usize,
    render: &str,
    fingerprint: u64,
    rounds: usize,
) -> BaselineFaultSummary {
    BaselineFaultSummary {
        strategy,
        nodes,
        groups,
        rounds,
        committed_blocks: 0,
        skipped_rounds: 0,
        crash_events: 0,
        restart_events: 0,
        min_live_nodes: nodes,
        equivocation_attempts: 0,
        equivocations_detected: 0,
        safety_breaches: 0,
        verdict_flips: 0,
        verdict_withholds: 0,
        liars_detected: 0,
        byz_skipped_rounds: 0,
        wasted_bytes: 0,
        total_bytes: 0,
        plan_fingerprint: fingerprint,
        plan_render: render.to_string(),
    }
}

/// Applies one round's churn and message faults to the baseline network.
fn apply_churn(net: &mut Network, round: &ScheduledRound, summary: &mut BaselineFaultSummary) {
    for node in &round.restarts {
        net.recover(*node);
    }
    for node in &round.crashes {
        net.crash(*node);
    }
    summary.restart_events += round.restarts.len();
    summary.crash_events += round.crashes.len();
    summary.min_live_nodes = summary.min_live_nodes.min(round.live_nodes);
    net.set_faults(round.message_faults.clone());
}

fn record_equivocation(summary: &mut BaselineFaultSummary, charge: ByzCharge) {
    summary.equivocation_attempts += 1;
    summary.wasted_bytes += charge.wasted_bytes;
    if charge.detected {
        summary.equivocations_detected += 1;
    } else {
        summary.safety_breaches += 1;
    }
    // Neither twin ever commits: detected frauds are discarded,
    // undetected ones are counted as breaches above.
    summary.skipped_rounds += 1;
    summary.byz_skipped_rounds += 1;
}

/// Equivocation against the flood network: twins to disjoint halves of
/// the live population, headers crossing on the gossip relay ring.
fn equivocate_full(
    network: &mut FullReplicationNetwork,
    batch: &[Transaction],
    all: &[NodeId],
) -> ByzCharge {
    let tip = *network
        .block(network.chain_len() - 1)
        .expect("genesis")
        .header();
    let leader = {
        let net = network.net();
        match elect_live_leader(&tip.id(), tip.height + 1, all, |n| net.is_up(n)) {
            Some(l) => l,
            None => {
                // No live proposer: nothing disseminated, nothing conflicts.
                return ByzCharge {
                    detected: true,
                    wasted_bytes: 0,
                };
            }
        }
    };
    let audience: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|n| *n != leader && network.net().is_up(*n))
        .collect();
    let block_bytes = BlockHeader::ENCODED_LEN as u64 + batch_body_bytes(batch);
    charge_equivocation(network.net_mut(), leader, &audience, block_bytes, false)
}

/// Equivocation against the active committee: twins to disjoint halves,
/// conflicting headers meeting in the all-pairs vote exchange.
fn equivocate_rapidchain(
    network: &mut RapidChainNetwork,
    batch: &[Transaction],
    shard: usize,
    committee: &[NodeId],
) -> ByzCharge {
    let tip = *network
        .shard_block(shard, network.shard_chain_len(shard) - 1)
        .expect("genesis")
        .header();
    let leader = {
        let net = network.net();
        match elect_live_leader(&tip.id(), tip.height + 1, committee, |n| net.is_up(n)) {
            Some(l) => l,
            None => {
                return ByzCharge {
                    detected: true,
                    wasted_bytes: 0,
                }
            }
        }
    };
    let audience: Vec<NodeId> = committee
        .iter()
        .copied()
        .filter(|n| *n != leader && network.net().is_up(*n))
        .collect();
    let block_bytes = BlockHeader::ENCODED_LEN as u64 + batch_body_bytes(batch);
    charge_equivocation(network.net_mut(), leader, &audience, block_bytes, true)
}

/// Tallies the active committee's verdict round for an honest shard block
/// under the scheduled flips and withholds. Every committee member holds
/// the full block, so a false reject is exposed to each honest member —
/// liars are named whenever any honest member is live. Returns whether
/// the committee fails to reach its accept quorum.
fn committee_verdict_stalls(
    network: &RapidChainNetwork,
    round: &ScheduledRound,
    shard: usize,
    committee: &[NodeId],
    summary: &mut BaselineFaultSummary,
) -> bool {
    if round.verdict_faults.is_empty() {
        return false;
    }
    let net = network.net();
    let live: Vec<NodeId> = committee
        .iter()
        .copied()
        .filter(|n| net.is_up(*n))
        .collect();
    if live.is_empty() {
        return false;
    }
    let in_shard = |n: &NodeId| network.shard_of(*n) == shard && live.contains(n);
    let flips = round
        .verdict_faults
        .iter()
        .filter(|(n, k)| *k == VerdictFault::Flip && in_shard(n))
        .count();
    let withholds = round
        .verdict_faults
        .iter()
        .filter(|(n, k)| *k == VerdictFault::Withhold && in_shard(n))
        .count();
    if flips == 0 && withholds == 0 {
        return false;
    }
    let honest = live.len() - flips - withholds;
    summary.verdict_flips += flips;
    summary.verdict_withholds += withholds;
    if honest > 0 {
        summary.liars_detected += flips;
    }
    let votes = std::iter::repeat(VerifierVote::Accept)
        .take(honest)
        .chain(std::iter::repeat(VerifierVote::Reject).take(flips))
        .chain(std::iter::repeat(VerifierVote::Withhold).take(withholds));
    tally_votes(votes, live.len()).outcome() != VerdictOutcome::Accepted
}

/// Meters the traffic a stalled committee round wasted: the leader's
/// full-block dissemination plus one all-pairs vote round that failed to
/// reach quorum.
fn charge_stalled_committee(
    network: &mut RapidChainNetwork,
    batch: &[Transaction],
    shard: usize,
    committee: &[NodeId],
) -> u64 {
    let tip = *network
        .shard_block(shard, network.shard_chain_len(shard) - 1)
        .expect("genesis")
        .header();
    let leader = {
        let net = network.net();
        match elect_live_leader(&tip.id(), tip.height + 1, committee, |n| net.is_up(n)) {
            Some(l) => l,
            None => return 0,
        }
    };
    let live: Vec<NodeId> = committee
        .iter()
        .copied()
        .filter(|n| network.net().is_up(*n))
        .collect();
    let block_bytes = BlockHeader::ENCODED_LEN as u64 + batch_body_bytes(batch);
    let net = network.net_mut();
    let before = net.meter().total().bytes;
    for member in live.iter().filter(|m| **m != leader) {
        let _ = net.send(leader, *member, MessageKind::BlockFull, block_bytes);
    }
    for from in &live {
        for to in &live {
            if from != to {
                let _ = net.send(*from, *to, MessageKind::Vote, VOTE_BYTES);
            }
        }
    }
    net.meter().total().bytes - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_faults::plan::{ByzantineConfig, ChurnConfig};
    use ici_net::link::LinkModel;

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 32,
            ..WorkloadConfig::default()
        }
    }

    fn quiet_link() -> LinkModel {
        LinkModel {
            max_jitter_ms: 0.0,
            ..LinkModel::default()
        }
    }

    fn full_config() -> FullConfig {
        FullConfig {
            nodes: 24,
            fanout: 4,
            link: quiet_link(),
            seed: 2,
            ..FullConfig::default()
        }
    }

    fn rc_config() -> RapidChainConfig {
        RapidChainConfig {
            nodes: 24,
            committee_size: 8,
            link: quiet_link(),
            seed: 2,
            ..RapidChainConfig::default()
        }
    }

    fn profile(seed: u64) -> FaultProfile {
        FaultProfile {
            seed,
            rounds: 10,
            churn: ChurnConfig {
                crash_prob: 0.08,
                restart_prob: 0.4,
                cluster_churn_prob: 0.0,
                min_live_per_cluster: 3,
                ..ChurnConfig::default()
            },
            ..FaultProfile::default()
        }
    }

    fn byz_profile(seed: u64) -> FaultProfile {
        FaultProfile {
            byzantine: ByzantineConfig {
                equivocation_prob: 0.3,
                false_verdict_fraction: 0.25,
                flip_prob: 0.35,
                withhold_prob: 0.15,
            },
            ..profile(seed)
        }
    }

    #[test]
    fn full_baseline_survives_crash_churn() {
        let (network, summary) =
            run_full_under_faults(full_config(), 4, workload(), profile(3)).expect("plan");
        assert_eq!(summary.strategy, "full");
        assert_eq!(summary.groups, 1);
        assert!(summary.crash_events > 0, "{}", summary.plan_render);
        assert_eq!(
            summary.committed_blocks + summary.skipped_rounds as u64,
            summary.rounds as u64
        );
        assert!(summary.min_live_nodes < 24);
        assert_eq!(summary.verdict_flips, 0, "solo validation has no verdicts");
        assert!(network.chain_len() > 1);
        assert!(summary.total_bytes > 0);
    }

    #[test]
    fn rapidchain_baseline_survives_crash_churn() {
        let (network, summary) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), profile(3)).expect("plan");
        assert_eq!(summary.strategy, "rapidchain");
        assert_eq!(summary.groups, 3);
        assert!(summary.crash_events > 0, "{}", summary.plan_render);
        assert_eq!(
            summary.committed_blocks + summary.skipped_rounds as u64,
            summary.rounds as u64
        );
        let total_height: u64 = (0..network.shard_count())
            .map(|s| network.shard_chain_len(s) - 1)
            .sum();
        assert_eq!(total_height, summary.committed_blocks);
    }

    #[test]
    fn full_baseline_detects_equivocation() {
        let (_, summary) =
            run_full_under_faults(full_config(), 4, workload(), byz_profile(23)).expect("plan");
        assert!(summary.equivocation_attempts > 0, "{}", summary.plan_render);
        // A live floor of 3 over one 24-node cluster keeps an honest
        // witness in both audience halves: detection is total.
        assert_eq!(summary.equivocation_detection_rate(), 1.0, "{summary:?}");
        assert_eq!(summary.safety_breaches, 0);
        assert!(summary.wasted_bytes > 0, "twins burn bandwidth");
        assert!(summary.wasted_fraction() > 0.0 && summary.wasted_fraction() < 1.0);
        assert_eq!(summary.verdict_flips + summary.verdict_withholds, 0);
    }

    #[test]
    fn rapidchain_baseline_detects_equivocation_and_names_liars() {
        let (_, summary) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), byz_profile(23)).expect("plan");
        assert!(summary.equivocation_attempts > 0, "{}", summary.plan_render);
        assert_eq!(summary.equivocation_detection_rate(), 1.0, "{summary:?}");
        assert_eq!(summary.safety_breaches, 0);
        assert_eq!(summary.liar_detection_rate(), 1.0, "{summary:?}");
        assert!(summary.wasted_bytes > 0);
    }

    #[test]
    fn rapidchain_heavy_flipping_stalls_the_active_committee() {
        let flood = FaultProfile {
            byzantine: ByzantineConfig {
                equivocation_prob: 0.0,
                false_verdict_fraction: 0.4,
                flip_prob: 1.0,
                withhold_prob: 0.0,
            },
            ..profile(13)
        };
        let (_, summary) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), flood).expect("plan");
        assert!(summary.verdict_flips > 0, "{}", summary.plan_render);
        // 3 liars in an 8-member committee leave 5 accepts < quorum 6.
        assert!(summary.byz_skipped_rounds > 0, "{summary:?}");
        assert_eq!(summary.liar_detection_rate(), 1.0, "{summary:?}");
        assert!(summary.wasted_bytes > 0);
    }

    #[test]
    fn baseline_fault_runs_are_deterministic() {
        let (_, a) =
            run_full_under_faults(full_config(), 4, workload(), byz_profile(29)).expect("plan");
        let (_, b) =
            run_full_under_faults(full_config(), 4, workload(), byz_profile(29)).expect("plan");
        assert_eq!(a, b);
        let (_, c) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), byz_profile(29)).expect("plan");
        let (_, d) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), byz_profile(29)).expect("plan");
        assert_eq!(c, d);
        assert_ne!(a.plan_render, c.plan_render, "different cluster maps");
    }

    #[test]
    fn rapidchain_fault_summary_is_thread_count_invariant() {
        ici_par::set_threads(1);
        let (_, serial) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), byz_profile(29)).expect("plan");
        ici_par::set_threads(4);
        let (_, parallel) =
            run_rapidchain_under_faults(rc_config(), 4, workload(), byz_profile(29)).expect("plan");
        assert_eq!(serial, parallel, "baseline run must not depend on threads");
    }
}
