//! High-level experiment runners.
//!
//! Each runner drives one strategy over a deterministic workload and
//! reduces the run to a [`RunSummary`] with the quantities the paper's
//! tables report: per-node storage, per-block communication, commit
//! latency, and throughput. The bench binaries are thin loops over these.

use ici_baselines::full::{FullConfig, FullReplicationNetwork};
use ici_baselines::rapidchain::{RapidChainConfig, RapidChainNetwork};
use ici_chain::genesis::GenesisConfig;
use ici_core::config::IciConfig;
use ici_core::network::IciNetwork;
use ici_storage::stats::StorageStats;
use ici_workload::{WorkloadConfig, WorkloadGenerator};

use crate::latency::LatencyStats;

/// Initial balance granted to each workload account at genesis — large
/// enough that no run exhausts a sender.
const GENESIS_BALANCE: u64 = u64::MAX / 1_000_000;

/// One strategy's run, reduced to the reported quantities.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Strategy label for tables.
    pub strategy: String,
    /// Nodes simulated.
    pub nodes: usize,
    /// Blocks committed (excluding genesis; RapidChain counts all shards).
    pub committed_blocks: u64,
    /// Transactions committed.
    pub total_txs: u64,
    /// Per-node storage statistics.
    pub storage: StorageStats,
    /// Bytes of one full ledger replica (denominator for ratios).
    pub ledger_bytes: u64,
    /// Mean messages per committed block.
    pub mean_block_messages: f64,
    /// Mean bytes per committed block.
    pub mean_block_bytes: f64,
    /// Commit latency statistics.
    pub commit_latency: LatencyStats,
    /// Committed transactions per simulated second.
    pub throughput_tps: f64,
    /// Final simulated clock in milliseconds.
    pub final_clock_ms: f64,
}

impl RunSummary {
    /// Per-node mean storage over the full-replica size, in `[0, 1]`.
    pub fn storage_fraction(&self) -> f64 {
        if self.ledger_bytes == 0 {
            0.0
        } else {
            self.storage.mean / self.ledger_bytes as f64
        }
    }
}

fn genesis_for(workload: &WorkloadConfig) -> GenesisConfig {
    GenesisConfig::uniform(workload.accounts, GENESIS_BALANCE)
}

/// Appends one per-round time-series sample (see `ici_trace::series`).
/// Runners call this only under `ICI_TELEMETRY=1`, like every other
/// exported-but-not-committed section.
#[allow(clippy::too_many_arguments)]
pub(crate) fn sample_round(
    samples: &mut Vec<ici_trace::series::RoundSample>,
    tracker: &mut ici_trace::series::TrafficTracker,
    round: u64,
    height: u64,
    at_us: u64,
    committed_txs: u64,
    generated_txs: u64,
    live_nodes: u64,
    stored_bytes: Vec<u64>,
    meter: &ici_net::metrics::TrafficMeter,
) {
    let traffic = tracker.delta(
        meter
            .by_kind()
            .iter()
            .map(|(kind, c)| (kind.name(), c.messages, c.bytes)),
    );
    samples.push(ici_trace::series::RoundSample {
        round,
        height,
        at_us,
        committed_txs,
        mempool_depth: generated_txs.saturating_sub(committed_txs),
        live_nodes,
        stored_bytes,
        traffic,
    });
}

/// Registers a finished run's samples under `label/n=<nodes>`.
pub(crate) fn finish_series(
    label: &str,
    nodes: usize,
    samples: Vec<ici_trace::series::RoundSample>,
) {
    if !samples.is_empty() {
        ici_trace::series::push(ici_trace::series::RunSeries {
            run: format!("{label}/n={nodes}"),
            samples,
        });
    }
}

/// Runs ICIStrategy for `blocks` blocks of `txs_per_block` transactions.
///
/// The genesis allocation is derived from the workload so every generated
/// transaction is funded.
///
/// # Panics
///
/// Panics if the configuration is invalid or a block fails to commit (all
/// nodes are honest and live in this runner; use the failure API directly
/// for crash experiments).
pub fn run_ici(
    mut config: IciConfig,
    blocks: usize,
    txs_per_block: usize,
    workload: WorkloadConfig,
) -> (IciNetwork, RunSummary) {
    let _span = ici_telemetry::span!("sim/run_ici");
    config.genesis = genesis_for(&workload);
    let mut network = IciNetwork::new(config).expect("valid configuration");
    let mut generator = WorkloadGenerator::new(workload);
    // Batches are pre-generated so the pipelined driver can keep
    // several heights in flight; the cumulative counts reproduce the
    // per-round mempool depth a lazy loop would have sampled, keeping
    // the series identical at every pipeline depth.
    let mut batches = Vec::with_capacity(blocks);
    let mut cumulative_generated = Vec::with_capacity(blocks);
    let mut generated = 0u64;
    for _ in 0..blocks {
        let batch = generator.batch(txs_per_block);
        generated += batch.len() as u64;
        cumulative_generated.push(generated);
        batches.push(batch);
    }
    let mut samples = Vec::new();
    let mut tracker = ici_trace::series::TrafficTracker::new();
    let depth = ici_par::pipeline_depth();
    network
        .propose_blocks_pipelined(batches, depth, |net, round| {
            if ici_telemetry::enabled() {
                let log = net.commit_log();
                sample_round(
                    &mut samples,
                    &mut tracker,
                    round as u64,
                    log.last().map_or(0, |r| r.height),
                    net.now().as_micros(),
                    log.iter().map(|r| r.tx_count as u64).sum(),
                    cumulative_generated[round],
                    net.net().live_nodes().len() as u64,
                    net.storage_bytes(),
                    net.net().meter(),
                );
            }
        })
        .expect("block commits");
    finish_series("ICIStrategy", network.config().nodes, samples);

    let log = network.commit_log();
    let total_txs: u64 = log.iter().map(|r| r.tx_count as u64).sum();
    let latencies = log.iter().map(|r| r.commit_latency());
    let commit_latency = LatencyStats::from_durations(latencies);
    let final_clock_ms = network.now().as_micros() as f64 / 1_000.0;
    let summary = RunSummary {
        strategy: "ICIStrategy".into(),
        nodes: network.config().nodes,
        committed_blocks: log.len() as u64,
        total_txs,
        storage: network.storage_stats(),
        ledger_bytes: network.full_replica_bytes(),
        mean_block_messages: mean(log.iter().map(|r| r.messages)),
        mean_block_bytes: mean(log.iter().map(|r| r.bytes)),
        commit_latency,
        throughput_tps: tps(total_txs, final_clock_ms),
        final_clock_ms,
    };
    network.net().meter().publish_telemetry();
    (network, summary)
}

/// Runs the full-replication baseline.
///
/// # Panics
///
/// Panics if a block fails to commit.
pub fn run_full(
    mut config: FullConfig,
    blocks: usize,
    txs_per_block: usize,
    workload: WorkloadConfig,
) -> (FullReplicationNetwork, RunSummary) {
    let _span = ici_telemetry::span!("sim/run_full");
    config.genesis = genesis_for(&workload);
    let nodes = config.nodes;
    let mut network = FullReplicationNetwork::new(config);
    let mut generator = WorkloadGenerator::new(workload);
    let mut generated = 0u64;
    let mut samples = Vec::new();
    let mut tracker = ici_trace::series::TrafficTracker::new();
    for round in 0..blocks {
        let batch = generator.batch(txs_per_block);
        generated += batch.len() as u64;
        network.propose_block(batch).expect("block commits");
        if ici_telemetry::enabled() {
            let log = network.commit_log();
            sample_round(
                &mut samples,
                &mut tracker,
                round as u64,
                log.last().map_or(0, |r| r.height),
                network.now().as_micros(),
                log.iter().map(|r| r.tx_count as u64).sum(),
                generated,
                network.net().live_nodes().len() as u64,
                vec![network.storage_bytes_per_node(); nodes],
                network.net().meter(),
            );
        }
    }
    finish_series("FullReplication", nodes, samples);

    let log = network.commit_log();
    let total_txs: u64 = log.iter().map(|r| r.tx_count as u64).sum();
    let commit_latency = LatencyStats::from_durations(log.iter().map(|r| r.commit_latency()));
    let per_node = network.storage_bytes_per_node();
    let final_clock_ms = network.now().as_micros() as f64 / 1_000.0;
    let summary = RunSummary {
        strategy: "FullReplication".into(),
        nodes,
        committed_blocks: log.len() as u64,
        total_txs,
        storage: StorageStats::from_bytes(std::iter::repeat(per_node).take(nodes)),
        ledger_bytes: per_node,
        mean_block_messages: mean(log.iter().map(|r| r.messages)),
        mean_block_bytes: mean(log.iter().map(|r| r.bytes)),
        commit_latency,
        throughput_tps: tps(total_txs, final_clock_ms),
        final_clock_ms,
    };
    network.net().meter().publish_telemetry();
    (network, summary)
}

/// Runs the RapidChain baseline for `rounds` rounds, each committing one
/// block of `txs_per_block` per shard (shards progress in parallel).
///
/// # Panics
///
/// Panics if a shard block fails to commit.
pub fn run_rapidchain(
    mut config: RapidChainConfig,
    rounds: usize,
    txs_per_block: usize,
    workload: WorkloadConfig,
) -> (RapidChainNetwork, RunSummary) {
    let _span = ici_telemetry::span!("sim/run_rapidchain");
    config.genesis = genesis_for(&workload);
    let nodes = config.nodes;
    let mut network = RapidChainNetwork::new(config);
    // One independent generator per shard so nonces stay sequential within
    // each shard's ledger.
    let mut generators: Vec<WorkloadGenerator> = (0..network.shard_count())
        .map(|s| {
            WorkloadGenerator::new(WorkloadConfig {
                seed: workload.seed ^ (s as u64).wrapping_mul(0x9E37_79B9),
                ..workload
            })
        })
        .collect();
    let mut generated = 0u64;
    let mut samples = Vec::new();
    let mut tracker = ici_trace::series::TrafficTracker::new();
    for round in 0..rounds {
        // One batch per shard, committed as a single parallel round: every
        // committee runs its proposal concurrently on the `ici-par` pool.
        let batches: Vec<_> = generators
            .iter_mut()
            .enumerate()
            .map(|(shard, generator)| (shard, generator.batch(txs_per_block)))
            .collect();
        generated += batches.iter().map(|(_, b)| b.len() as u64).sum::<u64>();
        let heights = network.propose_round(batches);
        assert!(heights.iter().all(Option::is_some), "shard commits");
        if ici_telemetry::enabled() {
            let log = network.commit_log();
            sample_round(
                &mut samples,
                &mut tracker,
                round as u64,
                round as u64 + 1,
                network.now().as_micros(),
                log.iter().map(|r| r.tx_count as u64).sum(),
                generated,
                network.net().live_nodes().len() as u64,
                network.storage_bytes(),
                network.net().meter(),
            );
        }
    }
    finish_series("RapidChain", nodes, samples);

    let log = network.commit_log();
    let total_txs: u64 = log.iter().map(|r| r.tx_count as u64).sum();
    let commit_latency = LatencyStats::from_durations(log.iter().map(|r| r.commit_latency()));
    let storage_bytes = network.storage_bytes();
    let ledger_bytes: u64 = {
        // One replica of the whole (sharded) ledger = sum over shards.
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0u64;
        for shard in 0..network.shard_count() {
            if seen.insert(shard) {
                for h in 0..network.shard_chain_len(shard) {
                    let b = network.shard_block(shard, h).expect("exists");
                    total += (ici_chain::block::BlockHeader::ENCODED_LEN
                        + b.header().body_len as usize) as u64;
                }
            }
        }
        total
    };
    let final_clock_ms = network.now().as_micros() as f64 / 1_000.0;
    let summary = RunSummary {
        strategy: "RapidChain".into(),
        nodes,
        committed_blocks: log.len() as u64,
        total_txs,
        storage: StorageStats::from_bytes(storage_bytes),
        ledger_bytes,
        mean_block_messages: mean(log.iter().map(|r| r.messages)),
        mean_block_bytes: mean(log.iter().map(|r| r.bytes)),
        commit_latency,
        throughput_tps: tps(total_txs, final_clock_ms),
        final_clock_ms,
    };
    network.net().meter().publish_telemetry();
    (network, summary)
}

fn mean<I: IntoIterator<Item = u64>>(values: I) -> f64 {
    let v: Vec<u64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<u64>() as f64 / v.len() as f64
    }
}

fn tps(txs: u64, clock_ms: f64) -> f64 {
    if clock_ms <= 0.0 {
        0.0
    } else {
        txs as f64 / (clock_ms / 1_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_net::link::LinkModel;

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 32,
            ..WorkloadConfig::default()
        }
    }

    fn quiet_link() -> LinkModel {
        LinkModel {
            max_jitter_ms: 0.0,
            ..LinkModel::default()
        }
    }

    #[test]
    fn ici_run_produces_consistent_summary() {
        let config = IciConfig::builder()
            .nodes(24)
            .cluster_size(8)
            .replication(2)
            .link(quiet_link())
            .build()
            .expect("valid");
        let (network, summary) = run_ici(config, 4, 6, workload());
        assert_eq!(summary.committed_blocks, 4);
        assert_eq!(summary.total_txs, 24);
        assert_eq!(summary.storage.nodes, 24);
        assert!(summary.throughput_tps > 0.0);
        assert!(summary.storage_fraction() < 1.0);
        assert_eq!(network.chain_len(), 5);
    }

    #[test]
    fn full_run_stores_everything() {
        let config = FullConfig {
            nodes: 24,
            link: quiet_link(),
            seed: 1,
            ..FullConfig::default()
        };
        let (_, summary) = run_full(config, 4, 6, workload());
        assert_eq!(summary.committed_blocks, 4);
        assert!((summary.storage_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rapidchain_run_commits_in_every_shard() {
        let config = RapidChainConfig {
            nodes: 40,
            committee_size: 10,
            link: quiet_link(),
            seed: 1,
            ..RapidChainConfig::default()
        };
        let (network, summary) = run_rapidchain(config, 2, 5, workload());
        assert_eq!(network.shard_count(), 4);
        assert_eq!(summary.committed_blocks, 8);
        assert_eq!(summary.total_txs, 40);
        // Each node stores ~1/k of the ledger.
        assert!(summary.storage_fraction() < 0.5);
    }

    #[test]
    fn ici_storage_fraction_is_far_below_full() {
        let ici_cfg = IciConfig::builder()
            .nodes(32)
            .cluster_size(16)
            .replication(2)
            .link(quiet_link())
            .build()
            .expect("valid");
        let (_, ici) = run_ici(ici_cfg, 5, 8, workload());
        let full_cfg = FullConfig {
            nodes: 32,
            link: quiet_link(),
            seed: 1,
            ..FullConfig::default()
        };
        let (_, full) = run_full(full_cfg, 5, 8, workload());
        assert!(
            ici.storage.mean < full.storage.mean / 3.0,
            "ici {} vs full {}",
            ici.storage.mean,
            full.storage.mean
        );
    }

    #[test]
    fn jittery_summary_is_thread_count_invariant() {
        let config = || {
            IciConfig::builder()
                .nodes(24)
                .cluster_size(8)
                .replication(2)
                .build()
                .expect("valid")
        };
        ici_par::set_threads(1);
        let (_, serial) = run_ici(config(), 3, 5, workload());
        ici_par::set_threads(4);
        let (_, parallel) = run_ici(config(), 3, 5, workload());
        assert_eq!(serial, parallel, "summary must not depend on threads");
    }

    #[test]
    fn jittery_summary_is_pipeline_depth_invariant() {
        let config = || {
            IciConfig::builder()
                .nodes(24)
                .cluster_size(8)
                .replication(2)
                .build()
                .expect("valid")
        };
        ici_par::set_pipeline_depth(1);
        let (_, serial) = run_ici(config(), 4, 5, workload());
        ici_par::set_pipeline_depth(4);
        let (_, piped) = run_ici(config(), 4, 5, workload());
        ici_par::set_pipeline_depth(0);
        assert_eq!(serial, piped, "summary must not depend on pipeline depth");
    }

    #[test]
    fn same_seed_same_summary() {
        let config = || {
            IciConfig::builder()
                .nodes(16)
                .cluster_size(8)
                .replication(2)
                .link(quiet_link())
                .build()
                .expect("valid")
        };
        let (_, a) = run_ici(config(), 3, 4, workload());
        let (_, b) = run_ici(config(), 3, 4, workload());
        assert_eq!(a, b);
    }
}
