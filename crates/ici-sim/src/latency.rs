//! Latency statistics over simulated durations.

use ici_net::time::Duration;

/// Summary of a set of latencies, in milliseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Sample count.
    pub samples: usize,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Computes statistics over durations. Returns the zero value for an
    /// empty input.
    pub fn from_durations<I>(durations: I) -> LatencyStats
    where
        I: IntoIterator<Item = Duration>,
    {
        let mut ms: Vec<f64> = durations.into_iter().map(|d| d.as_millis_f64()).collect();
        if ms.is_empty() {
            return LatencyStats::default();
        }
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = ms.len();
        LatencyStats {
            samples: n,
            mean_ms: ms.iter().sum::<f64>() / n as f64,
            p50_ms: ms[n / 2],
            p95_ms: ms[((n as f64 * 0.95) as usize).min(n - 1)],
            max_ms: ms[n - 1],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let stats =
            LatencyStats::from_durations([10u64, 20, 30, 40, 100].map(Duration::from_millis));
        assert_eq!(stats.samples, 5);
        assert_eq!(stats.mean_ms, 40.0);
        assert_eq!(stats.p50_ms, 30.0);
        assert_eq!(stats.max_ms, 100.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(
            LatencyStats::from_durations(std::iter::empty()),
            LatencyStats::default()
        );
    }

    #[test]
    fn single_sample() {
        let stats = LatencyStats::from_durations([Duration::from_millis(7)]);
        assert_eq!(stats.p50_ms, 7.0);
        assert_eq!(stats.p95_ms, 7.0);
        assert_eq!(stats.max_ms, 7.0);
    }
}
