//! Experiment harness: runners, statistics, tables, and result export.
//!
//! * [`runner`] — drives ICIStrategy and both baselines over a shared
//!   workload and reduces each run to a [`runner::RunSummary`];
//! * [`fault_run`] — the failure-aware runner: drives a run through a
//!   deterministic `ici-faults` schedule and certifies recovery with the
//!   shard-level Merkle audit;
//! * [`baseline_faults`] — the same fault plans driven through the
//!   full-replication and RapidChain baselines, for apples-to-apples
//!   survivability comparisons (`e_byz`);
//! * [`latency`] — latency percentile summaries;
//! * [`table`] — paper-style ASCII tables and CSV;
//! * [`report`] — JSON export of experiment records for `EXPERIMENTS.md`
//!   bookkeeping.
//!
//! # Examples
//!
//! ```
//! use ici_core::config::IciConfig;
//! use ici_sim::runner::run_ici;
//! use ici_workload::WorkloadConfig;
//!
//! let config = IciConfig::builder()
//!     .nodes(16)
//!     .cluster_size(8)
//!     .replication(2)
//!     .build()
//!     .expect("valid configuration");
//! let (_, summary) = run_ici(config, 2, 4, WorkloadConfig::default());
//! assert_eq!(summary.committed_blocks, 2);
//! assert!(summary.storage_fraction() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_faults;
pub mod fault_run;
pub mod latency;
pub mod report;
pub mod runner;
pub mod table;

pub use baseline_faults::{
    run_full_under_faults, run_rapidchain_under_faults, BaselineFaultSummary,
};
pub use fault_run::{run_ici_under_faults, FaultProfile, FaultRunSummary};
pub use latency::LatencyStats;
pub use report::ExperimentRecord;
pub use runner::{run_full, run_ici, run_rapidchain, RunSummary};
pub use table::{fmt_f64, Table};
