//! Per-node chain storage.
//!
//! ICIStrategy's central trick is that a node may hold the *header* of every
//! block but the *body* of only the blocks assigned to it. [`ChainStore`]
//! models exactly that: an append-only header chain plus a partial body map,
//! with byte-accurate storage accounting used by the E1/E2 experiments.

use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ici_crypto::sha256::Digest;

use crate::block::{Block, BlockHeader, BlockId, Height};
use crate::codec::Encode;
use crate::transaction::Transaction;

/// Errors from appending to a [`ChainStore`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Appended header's height is not `tip_height + 1` (or 0 for the first).
    NonSequentialHeight {
        /// Height expected next.
        expected: Height,
        /// Height offered.
        actual: Height,
    },
    /// Appended header's parent does not match the current tip id.
    ParentMismatch {
        /// Id of the current tip.
        tip: BlockId,
        /// Parent claimed by the new header.
        claimed: BlockId,
    },
    /// Body offered for a height whose header is absent.
    NoHeader(Height),
    /// Body does not match the stored header's commitments.
    BodyMismatch(Height),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NonSequentialHeight { expected, actual } => {
                write!(f, "expected next height {expected}, got {actual}")
            }
            StoreError::ParentMismatch { tip, claimed } => {
                write!(f, "parent mismatch: tip {tip}, claimed {claimed}")
            }
            StoreError::NoHeader(h) => write!(f, "no header stored at height {h}"),
            StoreError::BodyMismatch(h) => write!(f, "body does not match header at height {h}"),
        }
    }
}

impl Error for StoreError {}

/// Append-only header chain with partial bodies.
#[derive(Clone, Debug, Default)]
pub struct ChainStore {
    headers: Vec<BlockHeader>,
    /// Header ids, parallel to `headers`. Computed once on append so
    /// linkage checks and tip reads never re-hash a header.
    ids: Vec<BlockId>,
    /// Bodies held locally, keyed by height. Sparse under ICIStrategy;
    /// shared handles so reads and block reassembly never copy. Ordered
    /// by height so traversals (snapshot encoding, `body_heights`) are
    /// deterministic — the `unordered-iter` lint gates this crate.
    bodies: BTreeMap<Height, Arc<[Transaction]>>,
    /// Block id → height index. Point lookups only — never iterated.
    by_id: HashMap<BlockId, Height>,
    /// Running total of stored body bytes (headers are counted separately).
    body_bytes: u64,
}

impl ChainStore {
    /// An empty store.
    pub fn new() -> ChainStore {
        ChainStore::default()
    }

    /// Number of headers held (== chain length).
    pub fn len(&self) -> usize {
        self.headers.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.headers.is_empty()
    }

    /// The tip header, if any.
    pub fn tip(&self) -> Option<&BlockHeader> {
        self.headers.last()
    }

    /// Height of the tip, if any.
    pub fn tip_height(&self) -> Option<Height> {
        self.tip().map(|h| h.height)
    }

    /// Id of the tip header, from the append-time cache (no re-hash).
    pub fn tip_id(&self) -> Option<BlockId> {
        self.ids.last().copied()
    }

    /// Header at `height`.
    pub fn header(&self, height: Height) -> Option<&BlockHeader> {
        self.headers.get(height as usize)
    }

    /// All headers, genesis first.
    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    /// Height of the block with id `id`.
    pub fn height_of(&self, id: &BlockId) -> Option<Height> {
        self.by_id.get(id).copied()
    }

    /// Whether the body at `height` is held locally.
    pub fn has_body(&self, height: Height) -> bool {
        self.bodies.contains_key(&height)
    }

    /// The body at `height`, if held.
    pub fn body(&self, height: Height) -> Option<&[Transaction]> {
        self.bodies.get(&height).map(|b| &b[..])
    }

    /// The shared body handle at `height`, if held — a reference-count
    /// bump, never a copy of the transactions.
    pub fn body_shared(&self, height: Height) -> Option<Arc<[Transaction]>> {
        self.bodies.get(&height).map(Arc::clone)
    }

    /// Reassembles the full block at `height` if both header and body are
    /// held. The body was validated against the header when it was
    /// attached, so this is a shared-handle read: no body copy and no
    /// Merkle recomputation.
    pub fn block(&self, height: Height) -> Option<Block> {
        let header = *self.header(height)?;
        let body = self.body_shared(height)?;
        Some(Block::from_trusted_parts(header, body))
    }

    /// Appends a header, enforcing height/parent linkage.
    ///
    /// # Errors
    ///
    /// [`StoreError::NonSequentialHeight`] or [`StoreError::ParentMismatch`].
    pub fn append_header(&mut self, header: BlockHeader) -> Result<(), StoreError> {
        let expected = self.headers.len() as Height;
        if header.height != expected {
            return Err(StoreError::NonSequentialHeight {
                expected,
                actual: header.height,
            });
        }
        if let Some(tip_id) = self.tip_id() {
            if header.parent != tip_id {
                return Err(StoreError::ParentMismatch {
                    tip: tip_id,
                    claimed: header.parent,
                });
            }
        } else if header.parent != Digest::ZERO {
            return Err(StoreError::ParentMismatch {
                tip: Digest::ZERO,
                claimed: header.parent,
            });
        }
        let id = header.id();
        self.by_id.insert(id, header.height);
        self.ids.push(id);
        self.headers.push(header);
        Ok(())
    }

    /// Attaches a body to an already-stored header.
    ///
    /// # Errors
    ///
    /// [`StoreError::NoHeader`] if the header is absent,
    /// [`StoreError::BodyMismatch`] if the body fails the header's
    /// commitments.
    pub fn attach_body(
        &mut self,
        height: Height,
        body: Vec<Transaction>,
    ) -> Result<(), StoreError> {
        let header = *self.header(height).ok_or(StoreError::NoHeader(height))?;
        let block = Block::from_shared_parts(header, body.into())
            .map_err(|_| StoreError::BodyMismatch(height))?;
        if self
            .bodies
            .insert(height, block.transactions_shared())
            .is_none()
        {
            self.body_bytes += header.body_len as u64;
        }
        Ok(())
    }

    /// Appends a full block (header + body) at the tip.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChainStore::append_header`].
    pub fn append_block(&mut self, block: &Block) -> Result<(), StoreError> {
        self.append_header(*block.header())?;
        let height = block.height();
        if self
            .bodies
            .insert(height, block.transactions_shared())
            .is_none()
        {
            self.body_bytes += block.header().body_len as u64;
        }
        Ok(())
    }

    /// Drops the body at `height`, keeping the header. Returns whether a
    /// body was present. Used when responsibility moves away from this node.
    pub fn prune_body(&mut self, height: Height) -> bool {
        if let Some(_body) = self.bodies.remove(&height) {
            let len = self.header(height).map(|h| h.body_len as u64).unwrap_or(0);
            self.body_bytes = self.body_bytes.saturating_sub(len);
            true
        } else {
            false
        }
    }

    /// Heights whose bodies are held, in ascending order (the map is
    /// height-ordered, so no sort is needed).
    pub fn body_heights(&self) -> Vec<Height> {
        self.bodies.keys().copied().collect()
    }

    /// Number of bodies held.
    pub fn body_count(&self) -> usize {
        self.bodies.len()
    }

    /// Bytes of stored headers.
    pub fn header_bytes(&self) -> u64 {
        (self.headers.len() * BlockHeader::ENCODED_LEN) as u64
    }

    /// Bytes of stored bodies.
    pub fn body_bytes(&self) -> u64 {
        self.body_bytes
    }

    /// Total storage footprint in bytes (headers + bodies). The quantity
    /// plotted in experiments E1/E2/E4.
    pub fn total_bytes(&self) -> u64 {
        self.header_bytes() + self.body_bytes()
    }
}

impl Encode for ChainStore {
    /// Encodes the full store (headers, then each held body with its
    /// height). Used for bootstrap snapshots.
    fn encode(&self, w: &mut crate::codec::Writer) {
        self.headers.encode(w);
        let heights = self.body_heights();
        w.put_u32(heights.len() as u32);
        for h in heights {
            h.encode(w);
            self.bodies[&h].encode(w);
        }
    }

    fn encoded_len(&self) -> usize {
        let mut len = self.headers.encoded_len() + 4;
        for body in self.bodies.values() {
            len += 8 + body.encoded_len();
        }
        len
    }
}

impl crate::codec::Decode for ChainStore {
    /// Decodes a snapshot, re-validating header linkage and every body's
    /// commitments — a malformed or tampered snapshot is rejected, so a
    /// bootstrapping node can take a snapshot from an untrusted peer.
    fn decode(r: &mut crate::codec::Reader<'_>) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let headers = Vec::<BlockHeader>::decode(r)?;
        let mut store = ChainStore::new();
        for header in headers {
            store
                .append_header(header)
                .map_err(|_| CodecError::InvalidTag(0xFC))?;
        }
        let body_count = r.take_u32()? as usize;
        for _ in 0..body_count {
            let height = Height::decode(r)?;
            let body = Vec::<Transaction>::decode(r)?;
            store
                .attach_body(height, body)
                .map_err(|_| CodecError::InvalidTag(0xFD))?;
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Address;
    use ici_crypto::sig::Keypair;

    fn tx(i: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(i),
            Address::from_seed(i + 1),
            1,
            0,
            0,
            vec![0u8; 32],
        )
    }

    fn chain(n: u64) -> Vec<Block> {
        let mut blocks = Vec::new();
        let mut parent = Digest::ZERO;
        for height in 0..n {
            let block = Block::new(
                BlockHeader {
                    height,
                    parent,
                    tx_root: Digest::ZERO,
                    state_root: Digest::ZERO,
                    timestamp_ms: height * 1000,
                    proposer: height % 4,
                    pow_nonce: 0,
                    tx_count: 0,
                    body_len: 0,
                },
                vec![tx(height * 10), tx(height * 10 + 1)],
            );
            parent = block.id();
            blocks.push(block);
        }
        blocks
    }

    #[test]
    fn append_full_chain_and_query() {
        let blocks = chain(5);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_block(b).expect("sequential append");
        }
        assert_eq!(store.len(), 5);
        assert_eq!(store.tip_height(), Some(4));
        assert_eq!(store.block(2).expect("full block"), blocks[2]);
        assert_eq!(store.height_of(&blocks[3].id()), Some(3));
        assert_eq!(store.body_count(), 5);
    }

    #[test]
    fn header_only_then_attach_body() {
        let blocks = chain(3);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_header(*b.header()).expect("append header");
        }
        assert_eq!(store.body_count(), 0);
        assert!(store.block(1).is_none());

        store
            .attach_body(1, blocks[1].transactions().to_vec())
            .expect("attach");
        assert!(store.has_body(1));
        assert_eq!(store.block(1).expect("now full"), blocks[1]);
    }

    #[test]
    fn attach_rejects_wrong_body() {
        let blocks = chain(3);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_header(*b.header()).expect("append header");
        }
        assert_eq!(
            store.attach_body(1, blocks[2].transactions().to_vec()),
            Err(StoreError::BodyMismatch(1))
        );
        assert_eq!(
            store.attach_body(9, Vec::new()),
            Err(StoreError::NoHeader(9))
        );
    }

    #[test]
    fn linkage_is_enforced() {
        let blocks = chain(3);
        let mut store = ChainStore::new();
        store.append_block(&blocks[0]).expect("genesis");
        // Skipping a height fails.
        assert!(matches!(
            store.append_header(*blocks[2].header()),
            Err(StoreError::NonSequentialHeight {
                expected: 1,
                actual: 2
            })
        ));
        // Right height, wrong parent fails.
        let mut forged = *blocks[1].header();
        forged.parent = Digest::ZERO;
        assert!(matches!(
            store.append_header(forged),
            Err(StoreError::ParentMismatch { .. })
        ));
        // Non-zero parent for genesis fails on a fresh store.
        let mut fresh = ChainStore::new();
        let mut bad_genesis = *blocks[0].header();
        bad_genesis.parent = blocks[1].id();
        assert!(matches!(
            fresh.append_header(bad_genesis),
            Err(StoreError::ParentMismatch { .. })
        ));
    }

    #[test]
    fn storage_accounting_tracks_attach_and_prune() {
        let blocks = chain(4);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_block(b).expect("append");
        }
        let full = store.total_bytes();
        assert_eq!(store.header_bytes(), (4 * BlockHeader::ENCODED_LEN) as u64);
        assert_eq!(
            store.body_bytes(),
            blocks
                .iter()
                .map(|b| b.header().body_len as u64)
                .sum::<u64>()
        );

        assert!(store.prune_body(2));
        assert!(!store.prune_body(2));
        assert_eq!(
            store.total_bytes(),
            full - blocks[2].header().body_len as u64
        );
        assert_eq!(store.body_heights(), vec![0, 1, 3]);
    }

    #[test]
    fn double_attach_does_not_double_count() {
        let blocks = chain(2);
        let mut store = ChainStore::new();
        store.append_block(&blocks[0]).expect("append");
        let bytes = store.body_bytes();
        store
            .attach_body(0, blocks[0].transactions().to_vec())
            .expect("re-attach");
        assert_eq!(store.body_bytes(), bytes);
    }

    #[test]
    fn empty_store_defaults() {
        let store = ChainStore::new();
        assert!(store.is_empty());
        assert_eq!(store.tip_height(), None);
        assert_eq!(store.total_bytes(), 0);
        assert!(store.body_heights().is_empty());
    }

    #[test]
    fn snapshot_round_trips_with_partial_bodies() {
        use crate::codec::Decode;
        let blocks = chain(5);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_header(*b.header()).expect("append");
        }
        store
            .attach_body(1, blocks[1].transactions().to_vec())
            .expect("attach");
        store
            .attach_body(3, blocks[3].transactions().to_vec())
            .expect("attach");

        let bytes = crate::codec::Encode::to_bytes(&store);
        let decoded = ChainStore::from_bytes(&bytes).expect("round trip");
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded.body_heights(), vec![1, 3]);
        assert_eq!(decoded.total_bytes(), store.total_bytes());
        assert_eq!(decoded.block(3).expect("full"), blocks[3]);
    }

    #[test]
    fn snapshot_decode_rejects_tampering() {
        use crate::codec::Decode;
        let blocks = chain(3);
        let mut store = ChainStore::new();
        for b in &blocks {
            store.append_block(b).expect("append");
        }
        let bytes = crate::codec::Encode::to_bytes(&store);
        // Flip a byte inside the header region: linkage breaks.
        let mut tampered = bytes.clone();
        tampered[20] ^= 0xFF;
        assert!(ChainStore::from_bytes(&tampered).is_err());
        // Truncations fail cleanly at any cut.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(ChainStore::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_snapshot_round_trips() {
        use crate::codec::Decode;
        let store = ChainStore::new();
        let bytes = crate::codec::Encode::to_bytes(&store);
        let decoded = ChainStore::from_bytes(&bytes).expect("round trip");
        assert!(decoded.is_empty());
    }
}
