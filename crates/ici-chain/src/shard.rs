//! Shard geometry for the sharded world state and mempool.
//!
//! The commitment geometry is **fixed**: accounts always hash into
//! [`STATE_BUCKETS`] = 64 logical buckets keyed by the top six bits of
//! the first address byte. Because [`crate::transaction::Address`]
//! orders lexicographically, bucket index is monotone in address order:
//! concatenating buckets 0..64 visits accounts in exactly the global
//! sorted order, which is what keeps the flat v1 root byte-identical on
//! top of the sharded layout.
//!
//! The **physical** shard count is a runtime knob (`ICI_STATE_SHARDS`,
//! default 1 = the sequential reference path): a power of two in
//! `[1, 64]`, so every logical bucket lies wholly inside one physical
//! shard and both the v1 and v2 commitments are independent of the
//! shard count. Like `ICI_PAR_THREADS`, the knob is scheduling/layout
//! only — committed artifacts are byte-identical at every setting.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::transaction::Address;

/// Environment variable selecting the physical shard count at first
/// use; `0` or unset means 1 (the sequential reference path).
pub const ENV_VAR: &str = "ICI_STATE_SHARDS";

/// Number of logical commitment buckets. Fixed: the v2 state root is
/// defined over this many buckets regardless of the physical layout.
pub const STATE_BUCKETS: usize = 64;

/// Upper bound on physical shards (= one shard per logical bucket).
pub const MAX_STATE_SHARDS: usize = STATE_BUCKETS;

/// Configured shard count; `0` means "not yet resolved".
static SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Rounds `n` down to a power of two and clamps it into
/// `[1, MAX_STATE_SHARDS]`.
pub fn normalize_shards(n: usize) -> usize {
    let n = n.clamp(1, MAX_STATE_SHARDS);
    // Largest power of two <= n (n >= 1, so leading_zeros < BITS).
    1 << (usize::BITS - 1 - n.leading_zeros())
}

/// The effective physical shard count, resolving `ICI_STATE_SHARDS`
/// on first call. Always a power of two in `[1, MAX_STATE_SHARDS]`.
pub fn state_shards() -> usize {
    let configured = SHARDS.load(Ordering::Relaxed);
    if configured != 0 {
        return configured;
    }
    let from_env = std::env::var(ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let resolved = normalize_shards(from_env.unwrap_or(1));
    // A concurrent first call resolves the same value; the race is benign.
    SHARDS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the physical shard count (normalized like the env var).
/// Layout-only: states and pools constructed afterwards use the new
/// count, and their outputs are byte-identical at every setting.
pub fn set_state_shards(n: usize) {
    SHARDS.store(normalize_shards(n.max(1)), Ordering::Relaxed);
}

/// Logical commitment bucket of `address`: the top six bits of its
/// first byte, so buckets partition the address space into 64
/// contiguous, lexicographically ordered ranges.
pub fn bucket_of(address: &Address) -> usize {
    usize::from(address.as_bytes()[0] >> 2)
}

/// Physical shard holding logical bucket `bucket` when the state is
/// split into `shard_count` shards (`shard_count` must be a normalized
/// power of two; each shard owns a contiguous run of buckets).
pub fn shard_of_bucket(bucket: usize, shard_count: usize) -> usize {
    let shift = STATE_BUCKETS.trailing_zeros() - shard_count.trailing_zeros();
    bucket >> shift
}

/// Physical shard holding `address` under `shard_count` shards.
pub fn shard_of(address: &Address, shard_count: usize) -> usize {
    shard_of_bucket(bucket_of(address), shard_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rounds_down_to_power_of_two() {
        assert_eq!(normalize_shards(1), 1);
        assert_eq!(normalize_shards(2), 2);
        assert_eq!(normalize_shards(3), 2);
        assert_eq!(normalize_shards(4), 4);
        assert_eq!(normalize_shards(63), 32);
        assert_eq!(normalize_shards(64), 64);
        assert_eq!(normalize_shards(1000), 64);
        assert_eq!(normalize_shards(0), 1);
    }

    #[test]
    fn buckets_are_monotone_in_address_order() {
        let mut addrs: Vec<Address> = (0..512).map(Address::from_seed).collect();
        addrs.sort();
        let buckets: Vec<usize> = addrs.iter().map(bucket_of).collect();
        let mut sorted = buckets.clone();
        sorted.sort_unstable();
        assert_eq!(buckets, sorted, "bucket index must be monotone");
    }

    #[test]
    fn every_bucket_maps_into_range_for_all_shard_counts() {
        for &s in &[1usize, 2, 4, 8, 16, 32, 64] {
            for b in 0..STATE_BUCKETS {
                let shard = shard_of_bucket(b, s);
                assert!(shard < s, "bucket {b} → shard {shard} out of {s}");
            }
            // Contiguous, non-decreasing assignment.
            let shards: Vec<usize> = (0..STATE_BUCKETS).map(|b| shard_of_bucket(b, s)).collect();
            let mut sorted = shards.clone();
            sorted.sort_unstable();
            assert_eq!(shards, sorted);
            assert_eq!(shards[STATE_BUCKETS - 1], s - 1);
        }
    }

    #[test]
    fn shard_of_matches_bucket_mapping() {
        for seed in 0..64 {
            let addr = Address::from_seed(seed);
            assert_eq!(shard_of(&addr, 4), shard_of_bucket(bucket_of(&addr), 4));
        }
    }
}
