//! A hand-rolled, deterministic binary codec.
//!
//! Blocks and transactions must hash identically on every node, so the wire
//! format is fully specified here rather than delegated to a serialization
//! framework: integers are big-endian fixed width, byte strings are
//! `u32`-length-prefixed, and sequences are `u32`-count-prefixed.
//!
//! The [`Encode`] / [`Decode`] pair also powers the simulator's byte-exact
//! message metering: `encoded_len` of every protocol message is what the
//! network layer charges against bandwidth.
//!
//! # Examples
//!
//! ```
//! use ici_chain::codec::{Decode, Encode, Reader, Writer};
//!
//! let mut w = Writer::new();
//! 42u64.encode(&mut w);
//! b"payload".to_vec().encode(&mut w);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(u64::decode(&mut r)?, 42);
//! assert_eq!(Vec::<u8>::decode(&mut r)?, b"payload");
//! # Ok::<(), ici_chain::codec::CodecError>(())
//! ```

use std::error::Error;
use std::fmt;

use ici_crypto::sha256::{Digest, Sha256};
use ici_crypto::sig::{PublicKey, Signature, PUBLIC_KEY_LEN, SIGNATURE_LEN};

/// Maximum length accepted for a single byte-string field (16 MiB), a guard
/// against corrupt length prefixes allocating unbounded memory.
pub const MAX_FIELD_LEN: usize = 16 << 20;

/// Errors raised while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the field was complete.
    UnexpectedEof {
        /// Bytes needed to finish the field.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A length prefix exceeded [`MAX_FIELD_LEN`].
    FieldTooLarge(usize),
    /// An enum tag byte had no corresponding variant.
    InvalidTag(u8),
    /// Bytes were left over after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed}, had {remaining}"
                )
            }
            CodecError::FieldTooLarge(len) => write!(f, "field length {len} exceeds limit"),
            CodecError::InvalidTag(tag) => write!(f, "invalid enum tag {tag:#04x}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl Error for CodecError {}

/// Where a [`Writer`] sends its bytes: a growable buffer (the default),
/// or a streaming hasher for callers that only need a digest of the
/// encoding and never the bytes themselves.
#[derive(Clone, Debug)]
enum Sink {
    Buf(Vec<u8>),
    Hash { hasher: Sha256, written: usize },
}

impl Default for Sink {
    fn default() -> Sink {
        Sink::Buf(Vec::new())
    }
}

/// Output sink for encoding: a growable buffer, or a streaming hasher
/// (see [`Writer::hashing`]) that digests the encoding without ever
/// materializing it.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    sink: Sink,
}

impl Writer {
    /// Creates an empty buffering writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Creates a buffering writer with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Writer {
        Writer {
            sink: Sink::Buf(Vec::with_capacity(capacity)),
        }
    }

    /// Creates a writer that streams every byte into `hasher` instead of
    /// buffering. Pass a fresh [`Sha256`] — or one pre-seeded with a
    /// domain prefix — and finish with [`Writer::into_digest`]. The
    /// digest is byte-identical to hashing [`Encode::to_bytes`] output,
    /// with no intermediate allocation.
    pub fn hashing(hasher: Sha256) -> Writer {
        Writer {
            sink: Sink::Hash { hasher, written: 0 },
        }
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        match &mut self.sink {
            Sink::Buf(buf) => buf.extend_from_slice(bytes),
            Sink::Hash { hasher, written } => {
                hasher.update(bytes);
                *written += bytes.len();
            }
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.put_bytes(&[v]);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.put_bytes(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.put_bytes(&v.to_be_bytes());
    }

    /// Appends a `u32`-length-prefixed byte string.
    pub fn put_len_prefixed(&mut self, bytes: &[u8]) {
        debug_assert!(bytes.len() <= MAX_FIELD_LEN, "field exceeds MAX_FIELD_LEN");
        // lint:allow(cast) -- encoders are in-process and bounded by
        // MAX_FIELD_LEN (enforced on decode; debug-asserted here)
        self.put_u32(bytes.len() as u32);
        self.put_bytes(bytes);
    }

    /// Bytes written so far (buffered or streamed).
    pub fn len(&self) -> usize {
        match &self.sink {
            Sink::Buf(buf) => buf.len(),
            Sink::Hash { written, .. } => *written,
        }
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consumes the writer, returning the encoded bytes. A hashing
    /// writer has no bytes to return (that is the point); use
    /// [`Writer::into_digest`] on that path.
    pub fn into_bytes(self) -> Vec<u8> {
        debug_assert!(
            matches!(self.sink, Sink::Buf(_)),
            "into_bytes on a hashing writer discards the stream"
        );
        match self.sink {
            Sink::Buf(buf) => buf,
            Sink::Hash { .. } => Vec::new(),
        }
    }

    /// Consumes the writer, returning the SHA-256 of everything written.
    /// For a hashing writer this finalizes the stream; for a buffering
    /// writer it hashes the buffer (same digest, one copy later).
    pub fn into_digest(self) -> Digest {
        match self.sink {
            Sink::Buf(buf) => Sha256::digest(&buf),
            Sink::Hash { hasher, .. } => hasher.finalize(),
        }
    }

    /// Borrows the bytes written so far; empty for a hashing writer.
    pub fn as_bytes(&self) -> &[u8] {
        match &self.sink {
            Sink::Buf(buf) => buf,
            Sink::Hash { .. } => &[],
        }
    }
}

/// Cursor over input bytes for decoding.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` in a reader positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.remaining()))
        }
    }

    /// Takes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into a fixed-size array, without any
    /// panicking conversion: the length check lives in [`Reader::take`]
    /// and the copy is infallible once the slice is in hand.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_be_bytes(self.take_array()?))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_be_bytes(self.take_array()?))
    }

    /// Reads a `u32`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`CodecError::FieldTooLarge`] if the prefix exceeds
    /// [`MAX_FIELD_LEN`]; [`CodecError::UnexpectedEof`] if truncated.
    pub fn take_len_prefixed(&mut self) -> Result<&'a [u8], CodecError> {
        // lint:allow(cast) -- u32 → usize widens on every supported platform
        let len = self.take_u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::FieldTooLarge(len));
        }
        self.take(len)
    }
}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the encoding of `self` to `w`.
    fn encode(&self, w: &mut Writer);

    /// Exact length of the encoding in bytes.
    ///
    /// The default implementation encodes into a scratch buffer; types on
    /// hot metering paths override it with a closed form.
    fn encoded_len(&self) -> usize {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.len()
    }

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.encoded_len());
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Types decodable from their canonical encoding.
pub trait Decode: Sized {
    /// Decodes one value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Decodes a value that must consume the entire buffer.
    ///
    /// # Errors
    ///
    /// [`CodecError::TrailingBytes`] if input remains after the value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Encode for u8 {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for u8 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u32()
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_u64()
    }
}

impl Encode for Digest {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        Digest::LEN
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Digest::from_bytes(r.take_array()?))
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        PUBLIC_KEY_LEN
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PublicKey::from_bytes(r.take_array()?))
    }
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        SIGNATURE_LEN
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Signature::from_bytes(r.take_array()?))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut Writer) {
        debug_assert!(
            self.len() <= MAX_FIELD_LEN,
            "sequence exceeds MAX_FIELD_LEN"
        );
        // lint:allow(cast) -- element counts are in-process and bounded
        // by MAX_FIELD_LEN (enforced on decode; debug-asserted here)
        w.put_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
    fn encoded_len(&self) -> usize {
        4 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        self.as_slice().encode(w);
    }
    fn encoded_len(&self) -> usize {
        self.as_slice().encoded_len()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        // lint:allow(cast) -- u32 → usize widens on every supported platform
        let count = r.take_u32()? as usize;
        if count > MAX_FIELD_LEN {
            return Err(CodecError::FieldTooLarge(count));
        }
        let mut out = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_crypto::sha256::Sha256;
    use ici_crypto::sig::Keypair;

    #[test]
    fn integers_round_trip() {
        let mut w = Writer::new();
        0xDEu8.encode(&mut w);
        0xDEAD_BEEFu32.encode(&mut w);
        0xDEAD_BEEF_CAFE_F00Du64.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 13);

        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xDE);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), 0xDEAD_BEEF_CAFE_F00D);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn byte_strings_round_trip() {
        let payload = vec![1u8, 2, 3, 4, 5];
        let bytes = payload.to_bytes();
        assert_eq!(bytes.len(), payload.encoded_len());
        assert_eq!(Vec::<u8>::from_bytes(&bytes).unwrap(), payload);
    }

    #[test]
    fn empty_byte_string_round_trips() {
        let empty: Vec<u8> = Vec::new();
        assert_eq!(Vec::<u8>::from_bytes(&empty.to_bytes()).unwrap(), empty);
    }

    #[test]
    fn nested_vec_round_trips() {
        let v: Vec<u64> = vec![1, 2, 3, u64::MAX];
        assert_eq!(Vec::<u64>::from_bytes(&v.to_bytes()).unwrap(), v);
        assert_eq!(v.encoded_len(), 4 + 4 * 8);
    }

    #[test]
    fn digest_and_keys_round_trip() {
        let d = Sha256::digest(b"x");
        assert_eq!(<Digest as Decode>::from_bytes(&d.to_bytes()).unwrap(), d);

        let pair = Keypair::from_seed(5);
        let pk = pair.public();
        assert_eq!(
            <PublicKey as Decode>::from_bytes(&pk.to_bytes()).unwrap(),
            pk
        );
        let sig = pair.sign(b"m");
        assert_eq!(
            <Signature as Decode>::from_bytes(&sig.to_bytes()).unwrap(),
            sig
        );
    }

    #[test]
    fn eof_is_reported_with_counts() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(
            r.take_u32(),
            Err(CodecError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            r.take_len_prefixed(),
            Err(CodecError::FieldTooLarge(u32::MAX as usize))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected_by_from_bytes() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert_eq!(u64::from_bytes(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn truncated_vec_fails_cleanly() {
        let v: Vec<u64> = vec![1, 2, 3];
        let bytes = v.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Vec::<u64>::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn errors_display() {
        assert!(CodecError::InvalidTag(9).to_string().contains("0x09"));
        assert!(CodecError::TrailingBytes(3).to_string().contains('3'));
    }
}
