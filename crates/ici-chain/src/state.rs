//! The replicated world state: account balances and nonces.
//!
//! Applying a block is deterministic, so every node that executes the same
//! chain prefix reaches the same state and the same [`WorldState::root`]
//! commitment — the property the collaborative verification protocol relies
//! on when cluster members cross-check a proposed block's `state_root`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use ici_crypto::sha256::{Digest, Sha256};

use crate::block::Block;
use crate::transaction::{Address, Transaction};

/// Balance and sequence number of one account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Spendable balance.
    pub balance: u64,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// Reasons a transaction is rejected by state execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// Sender balance below `amount + fee`.
    InsufficientBalance {
        /// Sender address.
        sender: Address,
        /// Balance available.
        available: u64,
        /// Amount plus fee required.
        required: u64,
    },
    /// Transaction nonce is not the sender's next nonce.
    BadNonce {
        /// Sender address.
        sender: Address,
        /// Nonce expected by the state.
        expected: u64,
        /// Nonce carried by the transaction.
        actual: u64,
    },
    /// Signature verification failed.
    BadSignature,
    /// `amount + fee` overflowed.
    AmountOverflow,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance {
                sender,
                available,
                required,
            } => write!(
                f,
                "insufficient balance for {sender}: have {available}, need {required}"
            ),
            StateError::BadNonce {
                sender,
                expected,
                actual,
            } => write!(
                f,
                "bad nonce for {sender}: expected {expected}, got {actual}"
            ),
            StateError::BadSignature => f.write_str("invalid transaction signature"),
            StateError::AmountOverflow => f.write_str("amount + fee overflows"),
        }
    }
}

impl Error for StateError {}

/// The full account state, keyed by address.
///
/// Backed by a `BTreeMap` so iteration order — and therefore the state
/// root — is canonical.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorldState {
    accounts: BTreeMap<Address, AccountState>,
}

impl WorldState {
    /// An empty state (no accounts).
    pub fn new() -> WorldState {
        WorldState::default()
    }

    /// Creates a state with the given initial balances (nonces zero).
    pub fn with_balances<I>(balances: I) -> WorldState
    where
        I: IntoIterator<Item = (Address, u64)>,
    {
        let accounts = balances
            .into_iter()
            .map(|(addr, balance)| (addr, AccountState { balance, nonce: 0 }))
            .collect();
        WorldState { accounts }
    }

    /// Looks up an account, returning the default (zero) state if absent.
    pub fn account(&self, address: &Address) -> AccountState {
        self.accounts.get(address).copied().unwrap_or_default()
    }

    /// Balance shortcut.
    pub fn balance(&self, address: &Address) -> u64 {
        self.account(address).balance
    }

    /// Next-nonce shortcut.
    pub fn nonce(&self, address: &Address) -> u64 {
        self.account(address).nonce
    }

    /// Number of accounts with recorded state.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether no account has recorded state.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Credits `amount` to `address` (used for genesis allocations and fee
    /// payouts).
    pub fn credit(&mut self, address: Address, amount: u64) {
        let entry = self.accounts.entry(address).or_default();
        entry.balance = entry.balance.saturating_add(amount);
    }

    /// Validates `tx` against the current state without mutating it.
    ///
    /// # Errors
    ///
    /// Any [`StateError`] the transaction would trigger.
    pub fn check(&self, tx: &Transaction) -> Result<(), StateError> {
        if !tx.verify_signature() {
            return Err(StateError::BadSignature);
        }
        let sender = tx.sender_address();
        let account = self.account(&sender);
        if tx.nonce() != account.nonce {
            return Err(StateError::BadNonce {
                sender,
                expected: account.nonce,
                actual: tx.nonce(),
            });
        }
        let required = tx
            .amount()
            .checked_add(tx.fee())
            .ok_or(StateError::AmountOverflow)?;
        if account.balance < required {
            return Err(StateError::InsufficientBalance {
                sender,
                available: account.balance,
                required,
            });
        }
        Ok(())
    }

    /// Applies `tx`, transferring `amount` to the recipient and `fee` to
    /// `fee_collector`.
    ///
    /// # Errors
    ///
    /// Fails (leaving the state untouched) under the same conditions as
    /// [`WorldState::check`].
    pub fn apply(&mut self, tx: &Transaction, fee_collector: Address) -> Result<(), StateError> {
        self.check(tx)?;
        let sender = tx.sender_address();
        {
            let entry = self.accounts.entry(sender).or_default();
            entry.balance -= tx.amount() + tx.fee();
            entry.nonce += 1;
        }
        self.credit(tx.recipient(), tx.amount());
        if tx.fee() > 0 {
            self.credit(fee_collector, tx.fee());
        }
        Ok(())
    }

    /// Applies every transaction of `block`, paying fees to the proposer's
    /// derived address.
    ///
    /// # Errors
    ///
    /// Stops at the first failing transaction, returning its index and
    /// error; earlier transactions remain applied (callers validate on a
    /// clone first — see [`crate::validation`]).
    pub fn apply_block(&mut self, block: &Block) -> Result<(), (usize, StateError)> {
        let collector = Address::from_seed(block.header().proposer);
        for (i, tx) in block.transactions().iter().enumerate() {
            self.apply(tx, collector).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// A canonical commitment to the full state: the SHA-256 over all
    /// `(address, balance, nonce)` triples in address order.
    pub fn root(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ici-state-v1:");
        for (addr, acct) in &self.accounts {
            h.update(addr.as_bytes());
            h.update(&acct.balance.to_be_bytes());
            h.update(&acct.nonce.to_be_bytes());
        }
        h.finalize()
    }

    /// Total supply across all accounts (conserved by [`WorldState::apply`]).
    pub fn total_supply(&self) -> u64 {
        self.accounts.values().map(|a| a.balance).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_crypto::sig::Keypair;

    fn funded(seed: u64, balance: u64) -> (Keypair, WorldState) {
        let pair = Keypair::from_seed(seed);
        let state = WorldState::with_balances([(Address::from_seed(seed), balance)]);
        (pair, state)
    }

    fn transfer(from: &Keypair, to: Address, amount: u64, fee: u64, nonce: u64) -> Transaction {
        Transaction::signed(from, to, amount, fee, nonce, Vec::new())
    }

    #[test]
    fn simple_transfer_moves_funds_and_bumps_nonce() {
        let (alice, mut state) = funded(1, 100);
        let bob = Address::from_seed(2);
        let collector = Address::from_seed(99);
        state
            .apply(&transfer(&alice, bob, 30, 5, 0), collector)
            .expect("valid transfer");
        assert_eq!(state.balance(&Address::from_seed(1)), 65);
        assert_eq!(state.balance(&bob), 30);
        assert_eq!(state.balance(&collector), 5);
        assert_eq!(state.nonce(&Address::from_seed(1)), 1);
    }

    #[test]
    fn insufficient_balance_is_rejected_without_mutation() {
        let (alice, mut state) = funded(1, 10);
        let before = state.clone();
        let err = state
            .apply(
                &transfer(&alice, Address::from_seed(2), 30, 5, 0),
                Address::from_seed(99),
            )
            .expect_err("should fail");
        assert!(matches!(
            err,
            StateError::InsufficientBalance { required: 35, .. }
        ));
        assert_eq!(state, before);
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let (alice, mut state) = funded(1, 100);
        let err = state
            .apply(
                &transfer(&alice, Address::from_seed(2), 1, 0, 5),
                Address::from_seed(99),
            )
            .expect_err("should fail");
        assert!(matches!(
            err,
            StateError::BadNonce {
                expected: 0,
                actual: 5,
                ..
            }
        ));
    }

    #[test]
    fn replay_is_rejected_by_nonce() {
        let (alice, mut state) = funded(1, 100);
        let tx = transfer(&alice, Address::from_seed(2), 10, 0, 0);
        let collector = Address::from_seed(99);
        state.apply(&tx, collector).expect("first apply");
        let err = state.apply(&tx, collector).expect_err("replay");
        assert!(matches!(err, StateError::BadNonce { .. }));
    }

    #[test]
    fn bad_signature_is_rejected() {
        let (_, mut state) = funded(1, 100);
        // Sign with a key that does not match the claimed sender by
        // constructing with a different pair then swapping: easiest is to
        // decode-modify, but the public API path is to check a tx whose
        // payload was altered after signing.
        let alice = Keypair::from_seed(1);
        let tx = transfer(&alice, Address::from_seed(2), 10, 0, 0);
        let mut bytes = crate::codec::Encode::to_bytes(&tx);
        // Flip a byte in the amount field (offset: 33 pk + 20 addr = 53).
        bytes[53 + 7] ^= 0x01;
        let forged = <Transaction as crate::codec::Decode>::from_bytes(&bytes).expect("decodes");
        assert_eq!(
            state.apply(&forged, Address::from_seed(99)),
            Err(StateError::BadSignature)
        );
    }

    #[test]
    fn amount_overflow_is_rejected() {
        let (alice, state) = funded(1, u64::MAX);
        let tx = transfer(&alice, Address::from_seed(2), u64::MAX, 1, 0);
        assert_eq!(state.check(&tx), Err(StateError::AmountOverflow));
    }

    #[test]
    fn total_supply_is_conserved() {
        let (alice, mut state) = funded(1, 1000);
        let supply = state.total_supply();
        state
            .apply(
                &transfer(&alice, Address::from_seed(2), 100, 7, 0),
                Address::from_seed(3),
            )
            .expect("valid");
        assert_eq!(state.total_supply(), supply);
    }

    #[test]
    fn root_is_order_independent_but_content_sensitive() {
        let a =
            WorldState::with_balances([(Address::from_seed(1), 10), (Address::from_seed(2), 20)]);
        let b =
            WorldState::with_balances([(Address::from_seed(2), 20), (Address::from_seed(1), 10)]);
        assert_eq!(a.root(), b.root());

        let c =
            WorldState::with_balances([(Address::from_seed(1), 11), (Address::from_seed(2), 20)]);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn empty_state_has_stable_root() {
        assert_eq!(WorldState::new().root(), WorldState::default().root());
        assert!(WorldState::new().is_empty());
    }

    #[test]
    fn self_transfer_keeps_balance_minus_fee() {
        let (alice, mut state) = funded(1, 100);
        let me = Address::from_seed(1);
        state
            .apply(&transfer(&alice, me, 40, 3, 0), Address::from_seed(99))
            .expect("valid");
        assert_eq!(state.balance(&me), 97);
        assert_eq!(state.nonce(&me), 1);
    }

    #[test]
    fn fee_to_self_collector() {
        // A proposer including its own fee payout must still conserve supply.
        let (alice, mut state) = funded(1, 100);
        let collector = Address::from_seed(1);
        state
            .apply(
                &transfer(&alice, Address::from_seed(2), 10, 5, 0),
                collector,
            )
            .expect("valid");
        assert_eq!(state.balance(&Address::from_seed(1)), 90);
        assert_eq!(state.total_supply(), 100);
    }
}
