//! The replicated world state: account balances and nonces.
//!
//! Applying a block is deterministic, so every node that executes the same
//! chain prefix reaches the same state and the same [`WorldState::root`]
//! commitment — the property the collaborative verification protocol relies
//! on when cluster members cross-check a proposed block's `state_root`.
//!
//! # Sharded layout
//!
//! Accounts live in `ICI_STATE_SHARDS` physical shards (see
//! [`crate::shard`]), each an `Arc`-shared `BTreeMap` range-partitioned by
//! the top bits of the address. Cloning a state is O(shards) `Arc` bumps;
//! mutation copies only the touched shard (copy-on-write). Two commitments
//! are available behind versioned domain tags:
//!
//! * [`WorldState::root`] — the flat v1 commitment, a single SHA-256 over
//!   every account in address order. Byte-identical to the pre-sharding
//!   implementation (range partitioning preserves global iteration order),
//!   so committed experiment records do not churn. O(total accounts).
//! * [`WorldState::sharded_root`] — the v2 commitment: 64 fixed logical
//!   buckets, each summarised by an incrementally-maintained lattice
//!   accumulator (order-independent wrapping sums of per-account hashes,
//!   updated O(1) per touched account), combined as a hash over the 64
//!   cached bucket roots in bucket order. Only buckets dirtied since the
//!   last call are re-derived, so per-block commitment cost is
//!   proportional to touched accounts, not total accounts. The value is
//!   independent of the physical shard count and thread count.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ici_crypto::sha256::{Digest, Sha256};

use crate::block::Block;
use crate::shard::{self, STATE_BUCKETS};
use crate::transaction::{Address, Transaction};

/// Balance and sequence number of one account.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccountState {
    /// Spendable balance.
    pub balance: u64,
    /// Next expected transaction nonce.
    pub nonce: u64,
}

/// Reasons a transaction is rejected by state execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// Sender balance below `amount + fee`.
    InsufficientBalance {
        /// Sender address.
        sender: Address,
        /// Balance available.
        available: u64,
        /// Amount plus fee required.
        required: u64,
    },
    /// Transaction nonce is not the sender's next nonce.
    BadNonce {
        /// Sender address.
        sender: Address,
        /// Nonce expected by the state.
        expected: u64,
        /// Nonce carried by the transaction.
        actual: u64,
    },
    /// Signature verification failed.
    BadSignature,
    /// `amount + fee` overflowed.
    AmountOverflow,
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::InsufficientBalance {
                sender,
                available,
                required,
            } => write!(
                f,
                "insufficient balance for {sender}: have {available}, need {required}"
            ),
            StateError::BadNonce {
                sender,
                expected,
                actual,
            } => write!(
                f,
                "bad nonce for {sender}: expected {expected}, got {actual}"
            ),
            StateError::BadSignature => f.write_str("invalid transaction signature"),
            StateError::AmountOverflow => f.write_str("amount + fee overflows"),
        }
    }
}

impl Error for StateError {}

/// Which state commitment a block header carries.
///
/// v1 is the default everywhere so existing committed records stay
/// byte-identical; the scale tier opts into v2 explicitly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StateCommitment {
    /// Flat SHA-256 over all accounts (domain tag `ici-state-v1:`).
    #[default]
    FlatV1,
    /// Bucketed lattice commitment (domain tag `ici-state-v2:`).
    ShardedV2,
}

/// Domain tag for per-account leaf hashes of the v2 commitment.
const ACCT_TAG: &[u8] = b"ici-state-v2-acct:";
/// Domain tag for per-bucket roots of the v2 commitment.
const BUCKET_TAG: &[u8] = b"ici-state-v2-bucket:";
/// Domain tag for the combined v2 root.
const COMBINED_TAG: &[u8] = b"ici-state-v2:";

/// Hash contributed by one account to its bucket accumulator.
fn acct_hash(address: &Address, acct: &AccountState) -> Digest {
    let mut h = Sha256::new();
    h.update(ACCT_TAG);
    h.update(address.as_bytes());
    h.update(&acct.balance.to_be_bytes());
    h.update(&acct.nonce.to_be_bytes());
    h.finalize()
}

/// Order-independent lattice accumulator over the account hashes of one
/// logical bucket: four wrapping u64 lanes plus a live-account count.
/// `add` and `sub` are exact inverses, so updating an account is
/// sub(old) + add(new) — O(1) regardless of bucket size. An account
/// contributes iff its map entry exists, which keeps the accumulator in
/// lockstep with the shard maps (entries are created, never deleted).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct BucketAcc {
    sum: [u64; 4],
    count: u64,
}

impl BucketAcc {
    fn lanes(digest: &Digest) -> [u64; 4] {
        let bytes = digest.as_bytes();
        let mut lanes = [0u64; 4];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[i * 8..i * 8 + 8]);
            *lane = u64::from_le_bytes(word);
        }
        lanes
    }

    fn add(&mut self, digest: &Digest) {
        for (lane, d) in self.sum.iter_mut().zip(Self::lanes(digest)) {
            *lane = lane.wrapping_add(d);
        }
    }

    fn sub(&mut self, digest: &Digest) {
        for (lane, d) in self.sum.iter_mut().zip(Self::lanes(digest)) {
            *lane = lane.wrapping_sub(d);
        }
    }

    fn root(&self, bucket: u32) -> Digest {
        let mut h = Sha256::new();
        h.update(BUCKET_TAG);
        h.update(&bucket.to_be_bytes());
        h.update(&self.count.to_be_bytes());
        for lane in &self.sum {
            h.update(&lane.to_be_bytes());
        }
        h.finalize()
    }
}

/// Below this many transactions, a block's signatures are verified
/// inline — the fan-out overhead would dominate.
const PAR_SIG_MIN_TXS: usize = 64;

/// The full account state, keyed by address.
///
/// Backed by range-partitioned `BTreeMap` shards so iteration order — and
/// therefore the state root — is canonical (shard order concatenates to
/// global address order).
#[derive(Clone, Debug)]
pub struct WorldState {
    /// Physical shards in address order; `Arc` so clones are O(shards)
    /// and mutation copies only the touched shard.
    shards: Vec<Arc<BTreeMap<Address, AccountState>>>,
    /// Lattice accumulator per logical bucket (always [`STATE_BUCKETS`]).
    acc: Vec<BucketAcc>,
    /// Cached v2 bucket roots; `None` marks a bucket dirtied since the
    /// last [`WorldState::sharded_root`] call.
    cached: Vec<Option<Digest>>,
}

impl Default for WorldState {
    fn default() -> WorldState {
        WorldState::new()
    }
}

impl PartialEq for WorldState {
    /// Content equality: two states are equal when they hold the same
    /// accounts, regardless of physical shard count.
    fn eq(&self, other: &WorldState) -> bool {
        self.len() == other.len() && self.accounts().eq(other.accounts())
    }
}

impl Eq for WorldState {}

impl WorldState {
    /// An empty state partitioned into the configured
    /// (`ICI_STATE_SHARDS`) number of physical shards.
    pub fn new() -> WorldState {
        WorldState::with_shards(shard::state_shards())
    }

    /// An empty state with an explicit physical shard count (normalized
    /// to a power of two in `[1, 64]`), independent of the global knob —
    /// the deterministic-construction path for tests and experiments.
    pub fn with_shards(shard_count: usize) -> WorldState {
        let shard_count = shard::normalize_shards(shard_count);
        WorldState {
            shards: (0..shard_count)
                .map(|_| Arc::new(BTreeMap::new()))
                .collect(),
            acc: vec![BucketAcc::default(); STATE_BUCKETS],
            cached: vec![None; STATE_BUCKETS],
        }
    }

    /// Creates a state with the given initial balances (nonces zero).
    pub fn with_balances<I>(balances: I) -> WorldState
    where
        I: IntoIterator<Item = (Address, u64)>,
    {
        Self::with_balances_sharded(balances, shard::state_shards())
    }

    /// [`WorldState::with_balances`] with an explicit shard count.
    pub fn with_balances_sharded<I>(balances: I, shard_count: usize) -> WorldState
    where
        I: IntoIterator<Item = (Address, u64)>,
    {
        let mut state = WorldState::with_shards(shard_count);
        for (addr, balance) in balances {
            state.update_account(addr, |acct| *acct = AccountState { balance, nonce: 0 });
        }
        state
    }

    /// Number of physical shards backing this state.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Iterates all accounts in global address order.
    pub fn accounts(&self) -> impl Iterator<Item = (&Address, &AccountState)> {
        self.shards.iter().flat_map(|s| s.iter())
    }

    /// Read-modify-write on one account through the commitment
    /// bookkeeping: subtracts the old leaf hash from the bucket
    /// accumulator, applies `f`, adds the new leaf hash, and marks the
    /// bucket dirty. Absent accounts start from the default (zero) state.
    fn update_account<F: FnOnce(&mut AccountState)>(&mut self, address: Address, f: F) {
        let shard_idx = shard::shard_of(&address, self.shards.len());
        let bucket = shard::bucket_of(&address);
        let map = Arc::make_mut(&mut self.shards[shard_idx]);
        match map.entry(address) {
            std::collections::btree_map::Entry::Occupied(mut occupied) => {
                let old = acct_hash(&address, occupied.get());
                f(occupied.get_mut());
                let new = acct_hash(&address, occupied.get());
                self.acc[bucket].sub(&old);
                self.acc[bucket].add(&new);
            }
            std::collections::btree_map::Entry::Vacant(vacant) => {
                let mut acct = AccountState::default();
                f(&mut acct);
                let new = acct_hash(&address, vacant.insert(acct));
                self.acc[bucket].add(&new);
                self.acc[bucket].count += 1;
            }
        }
        self.cached[bucket] = None;
    }

    /// Looks up an account, returning the default (zero) state if absent.
    pub fn account(&self, address: &Address) -> AccountState {
        let shard_idx = shard::shard_of(address, self.shards.len());
        self.shards[shard_idx]
            .get(address)
            .copied()
            .unwrap_or_default()
    }

    /// Balance shortcut.
    pub fn balance(&self, address: &Address) -> u64 {
        self.account(address).balance
    }

    /// Next-nonce shortcut.
    pub fn nonce(&self, address: &Address) -> u64 {
        self.account(address).nonce
    }

    /// Number of accounts with recorded state.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no account has recorded state.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Credits `amount` to `address` (used for genesis allocations and fee
    /// payouts).
    pub fn credit(&mut self, address: Address, amount: u64) {
        self.update_account(address, |acct| {
            acct.balance = acct.balance.saturating_add(amount);
        });
    }

    /// Validates `tx` against the current state without mutating it.
    ///
    /// # Errors
    ///
    /// Any [`StateError`] the transaction would trigger.
    pub fn check(&self, tx: &Transaction) -> Result<(), StateError> {
        if !tx.verify_signature() {
            return Err(StateError::BadSignature);
        }
        self.check_presigned(tx)
    }

    /// [`WorldState::check`] minus signature verification — the path for
    /// transactions whose signatures were already verified in bulk.
    fn check_presigned(&self, tx: &Transaction) -> Result<(), StateError> {
        let sender = tx.sender_address();
        let account = self.account(&sender);
        if tx.nonce() != account.nonce {
            return Err(StateError::BadNonce {
                sender,
                expected: account.nonce,
                actual: tx.nonce(),
            });
        }
        let required = tx
            .amount()
            .checked_add(tx.fee())
            .ok_or(StateError::AmountOverflow)?;
        if account.balance < required {
            return Err(StateError::InsufficientBalance {
                sender,
                available: account.balance,
                required,
            });
        }
        Ok(())
    }

    /// Moves the checked transaction's funds (debit sender, credit
    /// recipient and fee collector).
    fn apply_mutations(&mut self, tx: &Transaction, fee_collector: Address) {
        let sender = tx.sender_address();
        self.update_account(sender, |acct| {
            acct.balance -= tx.amount() + tx.fee();
            acct.nonce += 1;
        });
        self.credit(tx.recipient(), tx.amount());
        if tx.fee() > 0 {
            self.credit(fee_collector, tx.fee());
        }
    }

    /// Applies `tx`, transferring `amount` to the recipient and `fee` to
    /// `fee_collector`.
    ///
    /// # Errors
    ///
    /// Fails (leaving the state untouched) under the same conditions as
    /// [`WorldState::check`].
    pub fn apply(&mut self, tx: &Transaction, fee_collector: Address) -> Result<(), StateError> {
        self.check(tx)?;
        self.apply_mutations(tx, fee_collector);
        Ok(())
    }

    /// [`WorldState::apply`] for a transaction whose signature was already
    /// verified (block apply verifies signatures in bulk up front).
    fn apply_presigned(
        &mut self,
        tx: &Transaction,
        fee_collector: Address,
    ) -> Result<(), StateError> {
        self.check_presigned(tx)?;
        self.apply_mutations(tx, fee_collector);
        Ok(())
    }

    /// Verifies every transaction signature of `block`, fanned out over
    /// the `ici-par` pool grouped by sender shard. Pure per-transaction
    /// work with index-ordered gathering, so the result — and everything
    /// downstream — is byte-identical at any shard × thread count.
    fn verify_signatures(block: &Block) -> Vec<bool> {
        let txs = block.transactions_shared();
        let shard_count = shard::state_shards();
        if txs.len() < PAR_SIG_MIN_TXS || shard_count == 1 {
            return txs.iter().map(Transaction::verify_signature).collect();
        }
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
        for (i, tx) in txs.iter().enumerate() {
            groups[shard::shard_of(&tx.sender_address(), shard_count)].push(i);
        }
        let tasks: Vec<(Arc<[Transaction]>, Vec<usize>)> = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|g| (Arc::clone(&txs), g))
            .collect();
        let verified = ici_par::par_map(tasks, |_, (txs, indices)| {
            indices
                .into_iter()
                .map(|i| (i, txs[i].verify_signature()))
                .collect::<Vec<(usize, bool)>>()
        });
        let mut ok = vec![false; txs.len()];
        for group in verified {
            for (i, valid) in group {
                ok[i] = valid;
            }
        }
        ok
    }

    /// Applies every transaction of `block`, paying fees to the proposer's
    /// derived address. Signatures are verified up front, fanned out
    /// per sender shard; the balance machine itself runs sequentially so
    /// failure semantics match the reference path exactly.
    ///
    /// # Errors
    ///
    /// Stops at the first failing transaction, returning its index and
    /// error; earlier transactions remain applied (callers validate on a
    /// clone first — see [`crate::validation`]).
    pub fn apply_block(&mut self, block: &Block) -> Result<(), (usize, StateError)> {
        let collector = Address::from_seed(block.header().proposer);
        let sig_ok = Self::verify_signatures(block);
        for (i, tx) in block.transactions().iter().enumerate() {
            if !sig_ok[i] {
                return Err((i, StateError::BadSignature));
            }
            self.apply_presigned(tx, collector).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// A canonical commitment to the full state: the SHA-256 over all
    /// `(address, balance, nonce)` triples in address order.
    ///
    /// This is the flat v1 commitment — O(total accounts), byte-identical
    /// to the pre-sharding implementation at every shard count.
    pub fn root(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"ici-state-v1:");
        for (addr, acct) in self.accounts() {
            h.update(addr.as_bytes());
            h.update(&acct.balance.to_be_bytes());
            h.update(&acct.nonce.to_be_bytes());
        }
        h.finalize()
    }

    /// Number of logical buckets whose cached v2 root is stale — the
    /// work the next [`WorldState::sharded_root`] call will do.
    pub fn dirty_buckets(&self) -> usize {
        self.cached.iter().filter(|c| c.is_none()).count()
    }

    /// The incremental v2 commitment: re-derives only the bucket roots
    /// dirtied since the last call (cost proportional to touched
    /// buckets, never total accounts) and hashes the 64 bucket roots in
    /// bucket order under the `ici-state-v2:` domain tag. Independent of
    /// physical shard count and thread count.
    pub fn sharded_root(&mut self) -> Digest {
        let mut recomputed = 0u64;
        for (bucket, slot) in self.cached.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(self.acc[bucket].root(bucket as u32));
                recomputed += 1;
            }
        }
        ici_telemetry::counter_add(
            "state/bucket_roots_recomputed",
            ici_telemetry::Label::Global,
            recomputed,
        );
        let mut h = Sha256::new();
        h.update(COMBINED_TAG);
        h.update(&(STATE_BUCKETS as u32).to_be_bytes());
        for slot in &self.cached {
            if let Some(digest) = slot {
                h.update(digest.as_bytes());
            }
        }
        h.finalize()
    }

    /// The commitment selected by `mode` (v1 flat or v2 sharded).
    pub fn root_for(&mut self, mode: StateCommitment) -> Digest {
        match mode {
            StateCommitment::FlatV1 => self.root(),
            StateCommitment::ShardedV2 => self.sharded_root(),
        }
    }

    /// Total supply across all accounts (conserved by [`WorldState::apply`]).
    pub fn total_supply(&self) -> u64 {
        self.accounts().map(|(_, a)| a.balance).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_crypto::sig::Keypair;

    fn funded(seed: u64, balance: u64) -> (Keypair, WorldState) {
        let pair = Keypair::from_seed(seed);
        let state = WorldState::with_balances([(Address::from_seed(seed), balance)]);
        (pair, state)
    }

    fn transfer(from: &Keypair, to: Address, amount: u64, fee: u64, nonce: u64) -> Transaction {
        Transaction::signed(from, to, amount, fee, nonce, Vec::new())
    }

    #[test]
    fn simple_transfer_moves_funds_and_bumps_nonce() {
        let (alice, mut state) = funded(1, 100);
        let bob = Address::from_seed(2);
        let collector = Address::from_seed(99);
        state
            .apply(&transfer(&alice, bob, 30, 5, 0), collector)
            .expect("valid transfer");
        assert_eq!(state.balance(&Address::from_seed(1)), 65);
        assert_eq!(state.balance(&bob), 30);
        assert_eq!(state.balance(&collector), 5);
        assert_eq!(state.nonce(&Address::from_seed(1)), 1);
    }

    #[test]
    fn insufficient_balance_is_rejected_without_mutation() {
        let (alice, mut state) = funded(1, 10);
        let before = state.clone();
        let err = state
            .apply(
                &transfer(&alice, Address::from_seed(2), 30, 5, 0),
                Address::from_seed(99),
            )
            .expect_err("should fail");
        assert!(matches!(
            err,
            StateError::InsufficientBalance { required: 35, .. }
        ));
        assert_eq!(state, before);
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let (alice, mut state) = funded(1, 100);
        let err = state
            .apply(
                &transfer(&alice, Address::from_seed(2), 1, 0, 5),
                Address::from_seed(99),
            )
            .expect_err("should fail");
        assert!(matches!(
            err,
            StateError::BadNonce {
                expected: 0,
                actual: 5,
                ..
            }
        ));
    }

    #[test]
    fn replay_is_rejected_by_nonce() {
        let (alice, mut state) = funded(1, 100);
        let tx = transfer(&alice, Address::from_seed(2), 10, 0, 0);
        let collector = Address::from_seed(99);
        state.apply(&tx, collector).expect("first apply");
        let err = state.apply(&tx, collector).expect_err("replay");
        assert!(matches!(err, StateError::BadNonce { .. }));
    }

    #[test]
    fn bad_signature_is_rejected() {
        let (_, mut state) = funded(1, 100);
        // Sign with a key that does not match the claimed sender by
        // constructing with a different pair then swapping: easiest is to
        // decode-modify, but the public API path is to check a tx whose
        // payload was altered after signing.
        let alice = Keypair::from_seed(1);
        let tx = transfer(&alice, Address::from_seed(2), 10, 0, 0);
        let mut bytes = crate::codec::Encode::to_bytes(&tx);
        // Flip a byte in the amount field (offset: 33 pk + 20 addr = 53).
        bytes[53 + 7] ^= 0x01;
        let forged = <Transaction as crate::codec::Decode>::from_bytes(&bytes).expect("decodes");
        assert_eq!(
            state.apply(&forged, Address::from_seed(99)),
            Err(StateError::BadSignature)
        );
    }

    #[test]
    fn amount_overflow_is_rejected() {
        let (alice, state) = funded(1, u64::MAX);
        let tx = transfer(&alice, Address::from_seed(2), u64::MAX, 1, 0);
        assert_eq!(state.check(&tx), Err(StateError::AmountOverflow));
    }

    #[test]
    fn total_supply_is_conserved() {
        let (alice, mut state) = funded(1, 1000);
        let supply = state.total_supply();
        state
            .apply(
                &transfer(&alice, Address::from_seed(2), 100, 7, 0),
                Address::from_seed(3),
            )
            .expect("valid");
        assert_eq!(state.total_supply(), supply);
    }

    #[test]
    fn root_is_order_independent_but_content_sensitive() {
        let a =
            WorldState::with_balances([(Address::from_seed(1), 10), (Address::from_seed(2), 20)]);
        let b =
            WorldState::with_balances([(Address::from_seed(2), 20), (Address::from_seed(1), 10)]);
        assert_eq!(a.root(), b.root());

        let c =
            WorldState::with_balances([(Address::from_seed(1), 11), (Address::from_seed(2), 20)]);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn empty_state_has_stable_root() {
        assert_eq!(WorldState::new().root(), WorldState::default().root());
        assert!(WorldState::new().is_empty());
    }

    #[test]
    fn self_transfer_keeps_balance_minus_fee() {
        let (alice, mut state) = funded(1, 100);
        let me = Address::from_seed(1);
        state
            .apply(&transfer(&alice, me, 40, 3, 0), Address::from_seed(99))
            .expect("valid");
        assert_eq!(state.balance(&me), 97);
        assert_eq!(state.nonce(&me), 1);
    }

    #[test]
    fn fee_to_self_collector() {
        // A proposer including its own fee payout must still conserve supply.
        let (alice, mut state) = funded(1, 100);
        let collector = Address::from_seed(1);
        state
            .apply(
                &transfer(&alice, Address::from_seed(2), 10, 5, 0),
                collector,
            )
            .expect("valid");
        assert_eq!(state.balance(&Address::from_seed(1)), 90);
        assert_eq!(state.total_supply(), 100);
    }

    /// Builds identical states at several shard counts.
    fn matrix_states(balances: &[(Address, u64)]) -> Vec<WorldState> {
        [1usize, 2, 4, 64]
            .iter()
            .map(|&s| WorldState::with_balances_sharded(balances.iter().copied(), s))
            .collect()
    }

    #[test]
    fn roots_are_shard_count_independent() {
        let balances: Vec<(Address, u64)> =
            (0..200).map(|s| (Address::from_seed(s), 50 + s)).collect();
        let mut states = matrix_states(&balances);
        let v1: Vec<Digest> = states.iter().map(WorldState::root).collect();
        let v2: Vec<Digest> = states.iter_mut().map(WorldState::sharded_root).collect();
        assert!(v1.windows(2).all(|w| w[0] == w[1]), "v1 varies with shards");
        assert!(v2.windows(2).all(|w| w[0] == w[1]), "v2 varies with shards");
        assert_ne!(v1[0], v2[0], "domain tags must separate v1 and v2");
        assert!(
            states.windows(2).all(|w| w[0] == w[1]),
            "content equality must ignore shard count"
        );
    }

    #[test]
    fn sharded_root_tracks_mutations_incrementally() {
        let mut state =
            WorldState::with_balances_sharded((0..100).map(|s| (Address::from_seed(s), 1000)), 4);
        let before = state.sharded_root();
        assert_eq!(state.dirty_buckets(), 0, "roots cached after computing");

        let alice = Keypair::from_seed(1);
        state
            .apply(
                &transfer(&alice, Address::from_seed(2), 10, 1, 0),
                Address::from_seed(99),
            )
            .expect("valid");
        let touched = state.dirty_buckets();
        assert!(
            (1..=3).contains(&touched),
            "a transfer touches at most sender+recipient+collector buckets, got {touched}"
        );
        let after = state.sharded_root();
        assert_ne!(before, after, "v2 root must react to mutation");

        // A from-scratch rebuild of the same contents agrees — the
        // incremental accumulators match a full recompute.
        let mut rebuilt = WorldState::with_balances_sharded(
            state
                .accounts()
                .map(|(a, st)| (*a, st.balance))
                .collect::<Vec<_>>(),
            1,
        );
        // Replay the nonce bump the transfer made.
        let replayed = state.nonce(&Address::from_seed(1));
        assert_eq!(replayed, 1);
        rebuilt.update_account(Address::from_seed(1), |acct| acct.nonce = 1);
        assert_eq!(rebuilt.sharded_root(), after);
    }

    #[test]
    fn v2_root_is_empty_state_stable() {
        assert_eq!(
            WorldState::with_shards(1).sharded_root(),
            WorldState::with_shards(64).sharded_root()
        );
    }
}
