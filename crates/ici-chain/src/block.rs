//! Blocks and block headers.
//!
//! A header commits to the parent block, the transaction Merkle root, the
//! post-state root, and the proposer. ICIStrategy nodes that are not
//! responsible for a block's body keep only the header (88 bytes of payload
//! + roots), which is what makes intra-cluster storage sharing cheap — the
//! header chain alone suffices to verify any body or Merkle proof fetched
//! later.

use std::fmt;
use std::sync::Arc;
use std::sync::OnceLock;

use ici_crypto::merkle::MerkleTree;
use ici_crypto::sha256::Digest;

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};
use crate::hashing;
use crate::transaction::Transaction;

/// A block identifier: the double-SHA-256 of the header encoding.
pub type BlockId = Digest;

/// Block height (genesis is height 0).
pub type Height = u64;

/// The fixed-size block header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    /// Height in the chain; genesis is 0.
    pub height: Height,
    /// Id of the parent block header ([`Digest::ZERO`] for genesis).
    pub parent: BlockId,
    /// Merkle root over the block's transactions.
    pub tx_root: Digest,
    /// Commitment to the world state after applying this block.
    pub state_root: Digest,
    /// Proposal time, milliseconds of simulated time.
    pub timestamp_ms: u64,
    /// Node id of the proposer.
    pub proposer: u64,
    /// Proof-of-work nonce (unused, zero, under BFT-style commit).
    pub pow_nonce: u64,
    /// Number of transactions in the body.
    pub tx_count: u32,
    /// Encoded length of the body in bytes, so header-only nodes can account
    /// for storage and plan fetches without the body in hand.
    pub body_len: u32,
}

impl BlockHeader {
    /// Encoded size of a header in bytes.
    pub const ENCODED_LEN: usize = 8 + 32 + 32 + 32 + 8 + 8 + 8 + 4 + 4;

    /// The header id (double-SHA-256 of the encoding), computed by
    /// streaming the encoding into the hasher — no intermediate buffer.
    pub fn id(&self) -> BlockId {
        hashing::double_sha256_encodable(self)
    }
}

impl Encode for BlockHeader {
    fn encode(&self, w: &mut Writer) {
        self.height.encode(w);
        self.parent.encode(w);
        self.tx_root.encode(w);
        self.state_root.encode(w);
        self.timestamp_ms.encode(w);
        self.proposer.encode(w);
        self.pow_nonce.encode(w);
        self.tx_count.encode(w);
        self.body_len.encode(w);
    }

    fn encoded_len(&self) -> usize {
        BlockHeader::ENCODED_LEN
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(BlockHeader {
            height: u64::decode(r)?,
            parent: Digest::decode(r)?,
            tx_root: Digest::decode(r)?,
            state_root: Digest::decode(r)?,
            timestamp_ms: u64::decode(r)?,
            proposer: u64::decode(r)?,
            pow_nonce: u64::decode(r)?,
            tx_count: u32::decode(r)?,
            body_len: u32::decode(r)?,
        })
    }
}

/// A full block: header plus transaction body.
///
/// The body lives behind an `Arc<[Transaction]>` so store reads, PBFT
/// dissemination, and storage assignment share one allocation instead
/// of cloning; cloning a `Block` is a reference-count bump. The block
/// id is computed once on first use and cached (construction-only
/// immutability: no method mutates the header after assembly).
#[derive(Clone)]
pub struct Block {
    header: BlockHeader,
    transactions: Arc<[Transaction]>,
    /// Lazily computed header id. Cloning carries the cache along;
    /// deliberately excluded from `PartialEq` (it is derived state).
    id_cache: OnceLock<BlockId>,
}

impl PartialEq for Block {
    fn eq(&self, other: &Block) -> bool {
        self.header == other.header && self.transactions == other.transactions
    }
}

impl Eq for Block {}

impl Block {
    /// Assembles a block, computing `tx_root`, `tx_count`, and `body_len`
    /// from `transactions`; the remaining header fields are taken from
    /// `template`.
    pub fn new(template: BlockHeader, transactions: Vec<Transaction>) -> Block {
        let mut header = template;
        header.tx_root = Block::compute_tx_root(&transactions);
        // lint:allow(cast) -- tx counts are bounded by block building
        // (mempool batch sizes) far below u32::MAX
        header.tx_count = transactions.len() as u32;
        header.body_len = transactions
            .iter()
            .map(|tx| tx.encoded_len())
            // lint:allow(cast) -- body bytes are bounded by MAX_FIELD_LEN
            // per field and per-block batch limits
            .sum::<usize>() as u32;
        Block {
            header,
            transactions: transactions.into(),
            id_cache: OnceLock::new(),
        }
    }

    /// Reassembles a block from parts already known to be consistent
    /// (e.g. after decoding); validates the Merkle root and counts.
    ///
    /// # Errors
    ///
    /// Returns the mismatching field name if the header does not commit to
    /// the body.
    pub fn from_parts(
        header: BlockHeader,
        transactions: Vec<Transaction>,
    ) -> Result<Block, BlockIntegrityError> {
        Block::from_shared_parts(header, transactions.into())
    }

    /// [`Block::from_parts`] over an already-shared body: validates the
    /// commitments without taking ownership of (or copying) the
    /// transactions.
    ///
    /// # Errors
    ///
    /// Same contract as [`Block::from_parts`].
    pub fn from_shared_parts(
        header: BlockHeader,
        transactions: Arc<[Transaction]>,
    ) -> Result<Block, BlockIntegrityError> {
        // lint:allow(cast) -- u32 → usize widens on every supported platform
        if header.tx_count as usize != transactions.len() {
            return Err(BlockIntegrityError::TxCount {
                header: header.tx_count,
                // lint:allow(cast) -- reporting only; a count that large
                // already failed the equality check above
                body: transactions.len() as u32,
            });
        }
        let root = Block::compute_tx_root(&transactions);
        if header.tx_root != root {
            return Err(BlockIntegrityError::TxRoot);
        }
        let body_len = transactions
            .iter()
            .map(|tx| tx.encoded_len())
            // lint:allow(cast) -- body bytes are bounded by MAX_FIELD_LEN
            // per field and per-block batch limits
            .sum::<usize>() as u32;
        if header.body_len != body_len {
            return Err(BlockIntegrityError::BodyLen {
                header: header.body_len,
                body: body_len,
            });
        }
        Ok(Block {
            header,
            transactions,
            id_cache: OnceLock::new(),
        })
    }

    /// Reassembles a block from parts whose consistency was already
    /// established (the header and body came out of [`Block::into_parts`]
    /// or a validated store entry together). Skips the Merkle-root
    /// recomputation that [`Block::from_shared_parts`] performs — callers
    /// must only pass pairs that provably belong together.
    pub(crate) fn from_trusted_parts(
        header: BlockHeader,
        transactions: Arc<[Transaction]>,
    ) -> Block {
        debug_assert_eq!(
            // lint:allow(cast) -- u32 → usize widens on every supported platform
            header.tx_count as usize,
            transactions.len(),
            "trusted parts disagree on tx count"
        );
        Block {
            header,
            transactions,
            id_cache: OnceLock::new(),
        }
    }

    /// Computes the Merkle root over transaction encodings, streaming
    /// each leaf into its hasher (no per-transaction encoding buffers).
    pub fn compute_tx_root(transactions: &[Transaction]) -> Digest {
        MerkleTree::from_leaf_hashes(Block::tx_leaf_hashes(transactions)).root()
    }

    /// Builds the Merkle tree over this block's transactions (for proofs).
    pub fn tx_tree(&self) -> MerkleTree {
        MerkleTree::from_leaf_hashes(Block::tx_leaf_hashes(&self.transactions))
    }

    /// Streams every transaction encoding into a leaf hasher, on the
    /// `ici-par` pool for wide blocks. Byte-identical to hashing
    /// materialized encodings at any thread count.
    fn tx_leaf_hashes(transactions: &[Transaction]) -> Vec<Digest> {
        /// Below this many leaves the pool overhead exceeds the hashing.
        const PAR_THRESHOLD_LEAVES: usize = 256;
        /// Leaves per parallel task (data-derived geometry).
        const CHUNK_LEAVES: usize = 64;
        if transactions.len() >= PAR_THRESHOLD_LEAVES && ici_par::threads() > 1 {
            let owned: Vec<Transaction> = transactions.to_vec();
            ici_par::par_chunks(owned, CHUNK_LEAVES, |_, chunk| {
                chunk
                    .iter()
                    .map(hashing::leaf_hash_encodable)
                    .collect::<Vec<Digest>>()
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            transactions
                .iter()
                .map(hashing::leaf_hash_encodable)
                .collect()
        }
    }

    /// The block header.
    pub fn header(&self) -> &BlockHeader {
        &self.header
    }

    /// The block id (== header id), computed once and cached.
    pub fn id(&self) -> BlockId {
        *self.id_cache.get_or_init(|| self.header.id())
    }

    /// Height shortcut.
    pub fn height(&self) -> Height {
        self.header.height
    }

    /// The transaction body.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// The shared body handle (a reference-count bump, no copy).
    pub fn transactions_shared(&self) -> Arc<[Transaction]> {
        Arc::clone(&self.transactions)
    }

    /// Consumes the block, returning header and an owned copy of the
    /// body. Callers that only read should prefer
    /// [`Block::transactions_shared`]; this copies when the body is
    /// still shared (it is the mutation escape hatch).
    pub fn into_parts(self) -> (BlockHeader, Vec<Transaction>) {
        (self.header, self.transactions.to_vec())
    }

    /// Encoded size of the body alone (what a responsible node stores on
    /// top of the header).
    pub fn body_len(&self) -> usize {
        // lint:allow(cast) -- u32 → usize widens on every supported platform
        self.header.body_len as usize
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Block")
            .field("height", &self.header.height)
            .field("id", &self.id())
            .field("txs", &self.transactions.len())
            .finish()
    }
}

impl Encode for Block {
    fn encode(&self, w: &mut Writer) {
        self.header.encode(w);
        self.transactions.encode(w);
    }

    fn encoded_len(&self) -> usize {
        // lint:allow(cast) -- u32 → usize widens on every supported platform
        BlockHeader::ENCODED_LEN + 4 + self.header.body_len as usize
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let header = BlockHeader::decode(r)?;
        let transactions = Vec::<Transaction>::decode(r)?;
        // Re-validate the commitments so a decoded block is always
        // internally consistent.
        Block::from_parts(header, transactions).map_err(|_| CodecError::InvalidTag(0xFB))
    }
}

/// A block whose header does not commit to its body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockIntegrityError {
    /// `tx_count` disagrees with the body length.
    TxCount {
        /// Count claimed by the header.
        header: u32,
        /// Actual number of body transactions.
        body: u32,
    },
    /// The Merkle root does not match the body.
    TxRoot,
    /// `body_len` disagrees with the encoded body.
    BodyLen {
        /// Length claimed by the header.
        header: u32,
        /// Actual encoded body length.
        body: u32,
    },
}

impl fmt::Display for BlockIntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockIntegrityError::TxCount { header, body } => {
                write!(f, "header claims {header} transactions, body has {body}")
            }
            BlockIntegrityError::TxRoot => f.write_str("merkle root does not match body"),
            BlockIntegrityError::BodyLen { header, body } => {
                write!(f, "header claims body of {header} bytes, body is {body}")
            }
        }
    }
}

impl std::error::Error for BlockIntegrityError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Address;
    use ici_crypto::sig::Keypair;

    fn txs(n: u64) -> Vec<Transaction> {
        (0..n)
            .map(|i| {
                Transaction::signed(
                    &Keypair::from_seed(i),
                    Address::from_seed(i + 100),
                    10 + i,
                    1,
                    0,
                    vec![0u8; 8],
                )
            })
            .collect()
    }

    fn template(height: u64, parent: BlockId) -> BlockHeader {
        BlockHeader {
            height,
            parent,
            tx_root: Digest::ZERO,
            state_root: Digest::ZERO,
            timestamp_ms: 1_000,
            proposer: 1,
            pow_nonce: 0,
            tx_count: 0,
            body_len: 0,
        }
    }

    #[test]
    fn new_fills_commitments() {
        let body = txs(3);
        let expected_len: usize = body.iter().map(|t| t.encoded_len()).sum();
        let block = Block::new(template(1, Digest::ZERO), body.clone());
        assert_eq!(block.header().tx_count, 3);
        assert_eq!(block.header().body_len as usize, expected_len);
        assert_eq!(block.header().tx_root, Block::compute_tx_root(&body));
    }

    #[test]
    fn header_encoding_is_fixed_size_and_round_trips() {
        let block = Block::new(template(2, Digest::ZERO), txs(2));
        let header = *block.header();
        let bytes = header.to_bytes();
        assert_eq!(bytes.len(), BlockHeader::ENCODED_LEN);
        assert_eq!(BlockHeader::from_bytes(&bytes).unwrap(), header);
    }

    #[test]
    fn block_encoding_round_trips() {
        let block = Block::new(template(1, Digest::ZERO), txs(5));
        let bytes = block.to_bytes();
        assert_eq!(bytes.len(), block.encoded_len());
        let decoded = Block::from_bytes(&bytes).expect("valid block");
        assert_eq!(decoded, block);
        assert_eq!(decoded.id(), block.id());
    }

    #[test]
    fn decode_rejects_body_tampering() {
        let block = Block::new(template(1, Digest::ZERO), txs(2));
        let mut bytes = block.to_bytes();
        // Flip a byte inside the body region (after the header).
        let idx = BlockHeader::ENCODED_LEN + 10;
        bytes[idx] ^= 0xFF;
        assert!(Block::from_bytes(&bytes).is_err());
    }

    #[test]
    fn from_parts_validates_commitments() {
        let block = Block::new(template(1, Digest::ZERO), txs(2));
        let (header, body) = block.into_parts();

        let mut short = body.clone();
        short.pop();
        assert!(matches!(
            Block::from_parts(header, short),
            Err(BlockIntegrityError::TxCount { .. })
        ));

        let mut wrong_root = header;
        wrong_root.tx_root = Digest::ZERO;
        assert_eq!(
            Block::from_parts(wrong_root, body.clone()),
            Err(BlockIntegrityError::TxRoot)
        );

        assert!(Block::from_parts(header, body).is_ok());
    }

    #[test]
    fn id_changes_with_any_header_field() {
        let base = Block::new(template(1, Digest::ZERO), txs(1));
        let base_id = base.id();

        let mut h = *base.header();
        h.height += 1;
        assert_ne!(h.id(), base_id);

        let mut h = *base.header();
        h.timestamp_ms += 1;
        assert_ne!(h.id(), base_id);

        let mut h = *base.header();
        h.proposer += 1;
        assert_ne!(h.id(), base_id);
    }

    #[test]
    fn empty_block_is_representable() {
        let block = Block::new(template(0, Digest::ZERO), Vec::new());
        assert_eq!(block.header().tx_count, 0);
        assert_eq!(block.header().tx_root, Digest::ZERO);
        assert_eq!(Block::from_bytes(&block.to_bytes()).unwrap(), block);
    }

    #[test]
    fn tx_tree_proofs_verify_against_header_root() {
        let block = Block::new(template(3, Digest::ZERO), txs(6));
        let tree = block.tx_tree();
        assert_eq!(tree.root(), block.header().tx_root);
        for (i, tx) in block.transactions().iter().enumerate() {
            let proof = tree.prove(i).expect("index in range");
            assert!(proof.verify(&tx.to_bytes(), block.header().tx_root));
        }
    }
}
