//! Account-model transactions.
//!
//! The paper's substrate is a generic transaction ledger; this reproduction
//! uses a signed account/nonce transfer model (sender public key, recipient
//! address, amount, fee, nonce, optional payload). The nonce orders a
//! sender's transactions and blocks replays; the payload lets workloads vary
//! transaction sizes realistically.

use std::fmt;

use ici_crypto::sha256::{Digest, Sha256};
use ici_crypto::sig::{Keypair, PublicKey, Signature};

use crate::codec::{CodecError, Decode, Encode, Reader, Writer};
use crate::hashing;

/// A transaction identifier: the double-SHA-256 of the full encoding.
pub type TxId = Digest;

/// A 20-byte account address, derived from a public key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Derives the address of `key`: the first 20 bytes of `SHA256(key)`.
    pub fn from_public_key(key: &PublicKey) -> Address {
        let digest = Sha256::digest(key.as_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&digest.as_bytes()[..20]);
        Address(out)
    }

    /// Derives the address owned by numeric identity `seed` (the address of
    /// `Keypair::from_seed(seed)`).
    pub fn from_seed(seed: u64) -> Address {
        Address::from_public_key(&Keypair::from_seed(seed).public())
    }

    /// The raw address bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: String = self.0[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Address({head}..)")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl Encode for Address {
    fn encode(&self, w: &mut Writer) {
        w.put_bytes(&self.0);
    }
    fn encoded_len(&self) -> usize {
        20
    }
}

impl Decode for Address {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Address(r.take_array()?))
    }
}

/// A signed account-model transfer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    sender: PublicKey,
    recipient: Address,
    amount: u64,
    fee: u64,
    nonce: u64,
    payload: Vec<u8>,
    signature: Signature,
}

impl Transaction {
    /// Builds and signs a transfer of `amount` from `sender_pair` to
    /// `recipient`, paying `fee`, with the sender's next `nonce` and an
    /// arbitrary `payload` (may be empty).
    pub fn signed(
        sender_pair: &Keypair,
        recipient: Address,
        amount: u64,
        fee: u64,
        nonce: u64,
        payload: Vec<u8>,
    ) -> Transaction {
        let mut tx = Transaction {
            sender: sender_pair.public(),
            recipient,
            amount,
            fee,
            nonce,
            payload,
            signature: Signature::from_bytes([0u8; 64]),
        };
        tx.signature = sender_pair.sign(&tx.signing_bytes());
        tx
    }

    /// The sender's public key.
    pub fn sender(&self) -> &PublicKey {
        &self.sender
    }

    /// The sender's derived address.
    pub fn sender_address(&self) -> Address {
        Address::from_public_key(&self.sender)
    }

    /// The recipient address.
    pub fn recipient(&self) -> Address {
        self.recipient
    }

    /// Transferred amount.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Fee paid to the proposer.
    pub fn fee(&self) -> u64 {
        self.fee
    }

    /// Sender sequence number.
    pub fn nonce(&self) -> u64 {
        self.nonce
    }

    /// Opaque payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The attached signature.
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The transaction id: double-SHA-256 over the full encoding,
    /// streamed into the hasher without materializing the bytes.
    pub fn id(&self) -> TxId {
        hashing::double_sha256_encodable(self)
    }

    /// The byte string the signature covers (everything but the signature,
    /// under a domain prefix).
    pub fn signing_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.payload.len());
        w.put_bytes(b"ici-tx-v1:");
        self.sender.encode(&mut w);
        self.recipient.encode(&mut w);
        self.amount.encode(&mut w);
        self.fee.encode(&mut w);
        self.nonce.encode(&mut w);
        self.payload.encode(&mut w);
        w.into_bytes()
    }

    /// Checks the signature against the sender key.
    pub fn verify_signature(&self) -> bool {
        self.sender.verify(&self.signing_bytes(), &self.signature)
    }
}

impl Encode for Transaction {
    fn encode(&self, w: &mut Writer) {
        self.sender.encode(w);
        self.recipient.encode(w);
        self.amount.encode(w);
        self.fee.encode(w);
        self.nonce.encode(w);
        w.put_len_prefixed(&self.payload);
        self.signature.encode(w);
    }

    fn encoded_len(&self) -> usize {
        33 + 20 + 8 + 8 + 8 + (4 + self.payload.len()) + 64
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Transaction {
            sender: PublicKey::decode(r)?,
            recipient: Address::decode(r)?,
            amount: u64::decode(r)?,
            fee: u64::decode(r)?,
            nonce: u64::decode(r)?,
            payload: r.take_len_prefixed()?.to_vec(),
            signature: Signature::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(seed: u64, nonce: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 1),
            100,
            1,
            nonce,
            vec![0xAB; 16],
        )
    }

    #[test]
    fn signed_transaction_verifies() {
        assert!(sample_tx(1, 0).verify_signature());
    }

    #[test]
    fn tampering_any_field_breaks_signature() {
        let tx = sample_tx(1, 0);
        let mut other = tx.clone();
        other.amount += 1;
        assert!(!other.verify_signature());

        let mut other = tx.clone();
        other.nonce += 1;
        assert!(!other.verify_signature());

        let mut other = tx.clone();
        other.recipient = Address::from_seed(99);
        assert!(!other.verify_signature());

        let mut other = tx.clone();
        other.payload.push(0);
        assert!(!other.verify_signature());

        let mut other = tx;
        other.fee = 1000;
        assert!(!other.verify_signature());
    }

    #[test]
    fn encoding_round_trips() {
        let tx = sample_tx(7, 3);
        let bytes = tx.to_bytes();
        assert_eq!(bytes.len(), tx.encoded_len());
        let decoded = Transaction::from_bytes(&bytes).expect("valid encoding");
        assert_eq!(decoded, tx);
        assert!(decoded.verify_signature());
        assert_eq!(decoded.id(), tx.id());
    }

    #[test]
    fn ids_are_distinct_per_transaction() {
        let a = sample_tx(1, 0);
        let b = sample_tx(1, 1);
        let c = sample_tx(2, 0);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn address_derivation_is_deterministic() {
        assert_eq!(Address::from_seed(5), Address::from_seed(5));
        assert_ne!(Address::from_seed(5), Address::from_seed(6));
        let pair = Keypair::from_seed(5);
        assert_eq!(
            Address::from_seed(5),
            Address::from_public_key(&pair.public())
        );
    }

    #[test]
    fn sender_address_matches_key() {
        let tx = sample_tx(4, 0);
        assert_eq!(tx.sender_address(), Address::from_seed(4));
    }

    #[test]
    fn truncated_encodings_fail() {
        let bytes = sample_tx(3, 0).to_bytes();
        for cut in [0, 10, 33, 60, bytes.len() - 1] {
            assert!(Transaction::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_payload_is_valid() {
        let tx = Transaction::signed(
            &Keypair::from_seed(1),
            Address::from_seed(2),
            5,
            0,
            0,
            Vec::new(),
        );
        assert!(tx.verify_signature());
        assert_eq!(tx.encoded_len(), 33 + 20 + 24 + 4 + 64);
        assert_eq!(Transaction::from_bytes(&tx.to_bytes()).unwrap(), tx);
    }

    #[test]
    fn address_display_is_hex() {
        let addr = Address([0xAB; 20]);
        assert_eq!(addr.to_string(), "ab".repeat(20));
    }
}
