//! Blockchain substrate for the ICIStrategy reproduction.
//!
//! This crate provides the ledger the storage strategies operate on:
//!
//! * [`codec`] — the canonical, deterministic binary wire format;
//! * [`hashing`] — streaming digests of encodable values (no
//!   intermediate buffers);
//! * [`transaction`] — signed account-model transfers;
//! * [`block`] — blocks and fixed-size headers with body commitments;
//! * [`state`] — the replicated account state and its root commitment;
//! * [`store`] — per-node storage with header-only / partial-body support
//!   and byte-accurate accounting;
//! * [`builder`] — block assembly against a scratch state;
//! * [`validation`] — linkage, signature, execution, and state-root checks,
//!   including the range-split used by collaborative verification;
//! * [`mempool`] — fee-prioritised, nonce-ordered transaction pool;
//! * [`genesis`] — deterministic chain origin.
//!
//! # Examples
//!
//! Build, validate, and store a block:
//!
//! ```
//! use ici_chain::builder::BlockBuilder;
//! use ici_chain::genesis::GenesisConfig;
//! use ici_chain::store::ChainStore;
//! use ici_chain::transaction::{Address, Transaction};
//! use ici_chain::validation::validate_block;
//! use ici_crypto::sig::Keypair;
//!
//! let cfg = GenesisConfig::uniform(4, 1_000);
//! let genesis = cfg.genesis_block();
//! let state = cfg.initial_state();
//!
//! let mut builder = BlockBuilder::new(genesis.header(), state.clone(), 3, 100);
//! builder.push(Transaction::signed(
//!     &Keypair::from_seed(0), Address::from_seed(1), 25, 1, 0, Vec::new(),
//! ))?;
//! let block = builder.seal();
//!
//! let post = validate_block(&block, genesis.header(), &state)?;
//! assert_eq!(post.balance(&Address::from_seed(1)), 1_025);
//!
//! let mut store = ChainStore::new();
//! store.append_block(&genesis)?;
//! store.append_block(&block)?;
//! assert_eq!(store.tip_height(), Some(1));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod builder;
pub mod codec;
pub mod genesis;
pub mod hashing;
pub mod mempool;
pub mod shard;
pub mod state;
pub mod store;
pub mod transaction;
pub mod validation;

pub use block::{Block, BlockHeader, BlockId, Height};
pub use genesis::GenesisConfig;
pub use mempool::Mempool;
pub use state::WorldState;
pub use store::ChainStore;
pub use transaction::{Address, Transaction, TxId};
