//! The transaction memory pool.
//!
//! Proposers draw block contents from a mempool that admits transactions
//! on signature validity, keeps at most one pending chain per sender
//! (ordered by nonce, no gaps served out of order), prioritises by fee,
//! and evicts the cheapest transactions under memory pressure — the
//! standard behaviour of deployed nodes, which the lifecycle's
//! "signatures are checked on admission" assumption rests on.
//!
//! # Sharding and fee indexes
//!
//! Senders are range-partitioned into `ICI_STATE_SHARDS` shards (the
//! same geometry as the world state, see [`crate::shard`]), so admission
//! touches one shard. Two maintained `BTreeSet` fee indexes replace the
//! historical full scans:
//!
//! * `all_fees` — every pending `(fee, sender, nonce)`; its minimum is
//!   the fee-market eviction victim (what `cheapest()` used to scan for).
//! * `heads` — one tuple per sender: the lowest-nonce (serveable) entry
//!   of that sender's chain; its maximum is the next block pick.
//!
//! Block selection k-way merges the per-shard maxima, so both eviction
//! and selection are O(shards + log n) per operation while the pop
//! order stays byte-identical to the old scans (the tuples compared are
//! exactly the ones the scans compared, with the same tie-breaks) at
//! every shard count — shards=1 is the sequential reference layout.

use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

use crate::shard;
use crate::transaction::{Address, Transaction, TxId};

/// Why a transaction was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MempoolError {
    /// Signature verification failed.
    BadSignature,
    /// The pool already holds this transaction.
    Duplicate(TxId),
    /// A different transaction with the same `(sender, nonce)` and an
    /// equal-or-higher fee is already pending (replace-by-fee applies).
    Underpriced {
        /// Fee of the incumbent transaction.
        incumbent_fee: u64,
    },
    /// The pool is full and this transaction's fee does not beat the
    /// cheapest pending one.
    PoolFull,
}

impl fmt::Display for MempoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MempoolError::BadSignature => f.write_str("invalid signature"),
            MempoolError::Duplicate(id) => write!(f, "duplicate transaction {id}"),
            MempoolError::Underpriced { incumbent_fee } => {
                write!(f, "underpriced: pending fee is {incumbent_fee}")
            }
            MempoolError::PoolFull => f.write_str("pool full and fee too low"),
        }
    }
}

impl std::error::Error for MempoolError {}

#[derive(Clone, Debug)]
struct Entry {
    tx: Transaction,
    id: TxId,
}

/// One sender-range shard: the nonce-ordered chains plus the two fee
/// indexes maintained in lockstep with them.
#[derive(Clone, Debug, Default)]
struct PoolShard {
    /// Per sender: nonce → entry. Both maps are BTreeMaps so iteration
    /// (`iter`, head lookups) visits (sender, nonce) in a defined order —
    /// a HashMap here would make tie-breaks and `iter()` output depend
    /// on hasher state across runs.
    by_sender: BTreeMap<Address, BTreeMap<u64, Entry>>,
    /// Every pending `(fee, sender, nonce)`; min = eviction victim.
    all_fees: BTreeSet<(u64, Address, u64)>,
    /// Lowest-nonce entry per sender as `(fee, sender, nonce)`;
    /// max = next block pick.
    heads: BTreeSet<(u64, Address, u64)>,
}

impl PoolShard {
    /// The serveable head of `sender`'s chain, as an index tuple.
    fn head_of(&self, sender: &Address) -> Option<(u64, Address, u64)> {
        self.by_sender
            .get(sender)
            .and_then(|chain| chain.iter().next())
            .map(|(nonce, e)| (e.tx.fee(), *sender, *nonce))
    }

    /// Fee of the pending entry at `(sender, nonce)`, if any.
    fn fee_at(&self, sender: &Address, nonce: u64) -> Option<u64> {
        self.by_sender
            .get(sender)
            .and_then(|chain| chain.get(&nonce))
            .map(|e| e.tx.fee())
    }

    /// Re-points the `heads` index after `sender`'s chain changed.
    fn refresh_head(
        &mut self,
        old_head: Option<(u64, Address, u64)>,
        new_head: Option<(u64, Address, u64)>,
    ) {
        if old_head == new_head {
            return;
        }
        if let Some(h) = old_head {
            self.heads.remove(&h);
        }
        if let Some(h) = new_head {
            self.heads.insert(h);
        }
    }

    /// Adds an entry (the caller guarantees `(sender, nonce)` is vacant)
    /// and maintains both indexes.
    fn insert_entry(&mut self, sender: Address, nonce: u64, entry: Entry) {
        let old_head = self.head_of(&sender);
        self.all_fees.insert((entry.tx.fee(), sender, nonce));
        self.by_sender
            .entry(sender)
            .or_default()
            .insert(nonce, entry);
        let new_head = self.head_of(&sender);
        self.refresh_head(old_head, new_head);
    }

    /// Removes the entry at `(sender, nonce)` — if present — dropping
    /// empty chains and maintaining both indexes.
    fn remove_entry(&mut self, sender: &Address, nonce: u64) -> Option<Entry> {
        let old_head = self.head_of(sender);
        let chain = self.by_sender.get_mut(sender)?;
        let entry = chain.remove(&nonce)?;
        if chain.is_empty() {
            self.by_sender.remove(sender);
        }
        self.all_fees.remove(&(entry.tx.fee(), *sender, nonce));
        let new_head = self.head_of(sender);
        self.refresh_head(old_head, new_head);
        Some(entry)
    }
}

/// A fee-prioritised, nonce-ordered transaction pool.
///
/// # Examples
///
/// ```
/// use ici_chain::mempool::Mempool;
/// use ici_chain::transaction::{Address, Transaction};
/// use ici_crypto::sig::Keypair;
///
/// let mut pool = Mempool::new(100);
/// let tx = Transaction::signed(
///     &Keypair::from_seed(0), Address::from_seed(1), 5, 2, 0, Vec::new(),
/// );
/// pool.insert(tx)?;
/// assert_eq!(pool.len(), 1);
/// let block_txs = pool.take_for_block(10);
/// assert_eq!(block_txs.len(), 1);
/// assert!(pool.is_empty());
/// # Ok::<(), ici_chain::mempool::MempoolError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    shards: Vec<PoolShard>,
    /// Membership check only — never iterated.
    ids: HashSet<TxId>,
    capacity: usize,
    len: usize,
    evicted: u64,
}

impl Mempool {
    /// Creates a pool bounded to `capacity` transactions, partitioned
    /// into the configured (`ICI_STATE_SHARDS`) number of shards.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mempool {
        Mempool::with_shards(capacity, shard::state_shards())
    }

    /// [`Mempool::new`] with an explicit shard count (normalized to a
    /// power of two in `[1, 64]`) — the deterministic-construction path
    /// for tests and experiments.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_shards(capacity: usize, shard_count: usize) -> Mempool {
        // lint:allow(panic) -- documented `# Panics` contract; capacity
        // is a construction-time constant, never attacker-controlled
        assert!(capacity > 0, "capacity must be positive");
        let shard_count = shard::normalize_shards(shard_count);
        Mempool {
            shards: vec![PoolShard::default(); shard_count],
            ids: HashSet::new(),
            capacity,
            len: 0,
            evicted: 0,
        }
    }

    /// Pending transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of sender-range shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Transactions evicted by the fee market since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The lowest pending fee — what a new transaction must beat to get
    /// in once the pool is full.
    pub fn fee_floor(&self) -> Option<u64> {
        self.cheapest().map(|(fee, _, _)| fee)
    }

    /// Whether `id` is pending.
    pub fn contains(&self, id: &TxId) -> bool {
        self.ids.contains(id)
    }

    fn shard_index(&self, sender: &Address) -> usize {
        shard::shard_of(sender, self.shards.len())
    }

    /// Admits `tx`, verifying its signature and applying replace-by-fee
    /// for `(sender, nonce)` collisions.
    ///
    /// # Errors
    ///
    /// See [`MempoolError`].
    pub fn insert(&mut self, tx: Transaction) -> Result<(), MempoolError> {
        if !tx.verify_signature() {
            return Err(MempoolError::BadSignature);
        }
        let id = tx.id();
        if self.ids.contains(&id) {
            return Err(MempoolError::Duplicate(id));
        }
        let sender = tx.sender_address();
        let shard_idx = self.shard_index(&sender);
        if let Some(incumbent_fee) = self.shards[shard_idx].fee_at(&sender, tx.nonce()) {
            if incumbent_fee >= tx.fee() {
                return Err(MempoolError::Underpriced { incumbent_fee });
            }
            // Replace-by-fee: drop the incumbent.
            if let Some(old) = self.shards[shard_idx].remove_entry(&sender, tx.nonce()) {
                self.ids.remove(&old.id);
                self.len -= 1;
            }
        }

        if self.len >= self.capacity {
            // Evict the globally cheapest pending transaction if this one
            // pays more; otherwise reject.
            match self.cheapest() {
                Some((fee, victim_sender, victim_nonce)) if tx.fee() > fee => {
                    let victim_shard = self.shard_index(&victim_sender);
                    if let Some(old) =
                        self.shards[victim_shard].remove_entry(&victim_sender, victim_nonce)
                    {
                        self.ids.remove(&old.id);
                        self.len -= 1;
                        self.evicted += 1;
                    }
                }
                _ => return Err(MempoolError::PoolFull),
            }
        }

        self.ids.insert(id);
        self.shards[shard_idx].insert_entry(sender, tx.nonce(), Entry { tx, id });
        self.len += 1;
        Ok(())
    }

    /// The globally cheapest pending `(fee, sender, nonce)`: the minimum
    /// over the per-shard `all_fees` minima — the same tuple (and the
    /// same tie-breaks) the historical full scan produced.
    fn cheapest(&self) -> Option<(u64, Address, u64)> {
        self.shards
            .iter()
            .filter_map(|s| s.all_fees.iter().next().copied())
            .min()
    }

    /// Selects up to `max` transactions for a block: senders' chains are
    /// consumed in nonce order, highest head-fee first, so the result is
    /// executable as-is against a state that matches the pool's nonces.
    /// Each pick k-way merges the per-shard `heads` maxima.
    pub fn take_for_block(&mut self, max: usize) -> Vec<Transaction> {
        let mut picked = Vec::with_capacity(max.min(self.len));
        while picked.len() < max {
            let best = self
                .shards
                .iter()
                .filter_map(|s| s.heads.iter().next_back().copied())
                .max();
            let Some((_, sender, nonce)) = best else {
                break;
            };
            let shard_idx = self.shard_index(&sender);
            let Some(entry) = self.shards[shard_idx].remove_entry(&sender, nonce) else {
                break;
            };
            self.ids.remove(&entry.id);
            self.len -= 1;
            picked.push(entry.tx);
        }
        picked
    }

    /// Drops every pending transaction from `sender` with nonce below
    /// `next_nonce` — called after a block commits to clear included or
    /// stale entries. Returns how many were removed.
    pub fn prune_below(&mut self, sender: &Address, next_nonce: u64) -> usize {
        let shard_idx = self.shard_index(sender);
        let Some(chain) = self.shards[shard_idx].by_sender.get(sender) else {
            return 0;
        };
        let stale: Vec<u64> = chain.range(..next_nonce).map(|(n, _)| *n).collect();
        for nonce in &stale {
            if let Some(e) = self.shards[shard_idx].remove_entry(sender, *nonce) {
                self.ids.remove(&e.id);
                self.len -= 1;
            }
        }
        stale.len()
    }

    /// Iterates pending transactions in (sender, nonce) order (shards
    /// are sender ranges, so shard order concatenates to global order).
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.shards
            .iter()
            .flat_map(|s| s.by_sender.values())
            .flat_map(|chain| chain.values().map(|e| &e.tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_crypto::sig::Keypair;

    fn tx(seed: u64, nonce: u64, fee: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 100),
            1,
            fee,
            nonce,
            Vec::new(),
        )
    }

    #[test]
    fn insert_and_take_round_trip() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 0, 5)).expect("admits");
        pool.insert(tx(2, 0, 7)).expect("admits");
        assert_eq!(pool.len(), 2);
        let picked = pool.take_for_block(10);
        assert_eq!(picked.len(), 2);
        // Highest fee first.
        assert_eq!(picked[0].fee(), 7);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 0, 5);
        pool.insert(t.clone()).expect("admits");
        assert!(matches!(pool.insert(t), Err(MempoolError::Duplicate(_))));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 0, 5);
        let mut bytes = crate::codec::Encode::to_bytes(&t);
        bytes[60] ^= 1;
        let forged = <Transaction as crate::codec::Decode>::from_bytes(&bytes).expect("decodes");
        assert_eq!(pool.insert(forged), Err(MempoolError::BadSignature));
    }

    /// Same (sender, nonce) but a distinct payload, so ids differ and the
    /// replace-by-fee path (not the duplicate path) is exercised.
    fn tx_variant(seed: u64, nonce: u64, fee: u64, tag: u8) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 100),
            1,
            fee,
            nonce,
            vec![tag],
        )
    }

    #[test]
    fn replace_by_fee() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 0, 5)).expect("admits");
        // Same (sender, nonce), equal/lower fee → rejected.
        assert!(matches!(
            pool.insert(tx_variant(1, 0, 5, 0xAA)),
            Err(MempoolError::Underpriced { incumbent_fee: 5 })
        ));
        assert!(matches!(
            pool.insert(tx_variant(1, 0, 4, 0xAB)),
            Err(MempoolError::Underpriced { .. })
        ));
        // Higher fee replaces.
        pool.insert(tx_variant(1, 0, 9, 0xAC)).expect("replaces");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.take_for_block(1)[0].fee(), 9);
    }

    #[test]
    fn nonce_order_is_preserved_per_sender() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 2, 50)).expect("admits");
        pool.insert(tx(1, 0, 1)).expect("admits");
        pool.insert(tx(1, 1, 10)).expect("admits");
        let picked = pool.take_for_block(10);
        let nonces: Vec<u64> = picked.iter().map(|t| t.nonce()).collect();
        assert_eq!(
            nonces,
            vec![0, 1, 2],
            "sender chain must serve in nonce order"
        );
    }

    #[test]
    fn eviction_prefers_cheapest() {
        let mut pool = Mempool::new(2);
        pool.insert(tx(1, 0, 1)).expect("admits");
        pool.insert(tx(2, 0, 5)).expect("admits");
        // Fee 3 beats the cheapest (1) → evicts it.
        pool.insert(tx(3, 0, 3)).expect("evicts cheapest");
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evicted(), 1);
        let fees: Vec<u64> = pool.iter().map(|t| t.fee()).collect();
        assert!(!fees.contains(&1));
        // Fee 2 does not beat the new cheapest (3) → rejected.
        assert_eq!(pool.insert(tx(4, 0, 2)), Err(MempoolError::PoolFull));
        assert_eq!(pool.fee_floor(), Some(3));
    }

    #[test]
    fn prune_below_clears_committed_nonces() {
        let mut pool = Mempool::new(10);
        for nonce in 0..5 {
            pool.insert(tx(1, nonce, 2)).expect("admits");
        }
        let sender = Address::from_seed(1);
        assert_eq!(pool.prune_below(&sender, 3), 3);
        assert_eq!(pool.len(), 2);
        let nonces: Vec<u64> = pool.iter().map(|t| t.nonce()).collect();
        assert!(nonces.contains(&3) && nonces.contains(&4));
        // Pruning an unknown sender is a no-op.
        assert_eq!(pool.prune_below(&Address::from_seed(9), 10), 0);
    }

    #[test]
    fn take_respects_max() {
        let mut pool = Mempool::new(10);
        for seed in 0..6 {
            pool.insert(tx(seed, 0, seed + 1)).expect("admits");
        }
        let picked = pool.take_for_block(4);
        assert_eq!(picked.len(), 4);
        assert_eq!(pool.len(), 2);
        // Fees picked are the 4 highest.
        let fees: Vec<u64> = picked.iter().map(|t| t.fee()).collect();
        assert_eq!(fees, vec![6, 5, 4, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Mempool::new(0);
    }

    #[test]
    fn contains_tracks_ids() {
        let mut pool = Mempool::new(4);
        let t = tx(1, 0, 2);
        let id = t.id();
        assert!(!pool.contains(&id));
        pool.insert(t).expect("admits");
        assert!(pool.contains(&id));
        pool.take_for_block(1);
        assert!(!pool.contains(&id));
    }

    #[test]
    fn index_invariants_hold_under_churn() {
        let mut pool = Mempool::with_shards(8, 4);
        for seed in 0..12 {
            let _ = pool.insert(tx(seed, 0, (seed % 5) + 1));
            let _ = pool.insert(tx(seed, 1, (seed % 3) + 1));
        }
        let _ = pool.take_for_block(5);
        let _ = pool.prune_below(&Address::from_seed(3), 2);
        let entries: usize = pool
            .shards
            .iter()
            .map(|s| s.by_sender.values().map(|c| c.len()).sum::<usize>())
            .sum();
        let fees: usize = pool.shards.iter().map(|s| s.all_fees.len()).sum();
        let heads: usize = pool.shards.iter().map(|s| s.heads.len()).sum();
        let senders: usize = pool.shards.iter().map(|s| s.by_sender.len()).sum();
        assert_eq!(entries, pool.len());
        assert_eq!(fees, pool.len());
        assert_eq!(heads, senders);
        assert_eq!(pool.ids.len(), pool.len());
    }
}
