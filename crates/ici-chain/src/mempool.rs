//! The transaction memory pool.
//!
//! Proposers draw block contents from a mempool that admits transactions
//! on signature validity, keeps at most one pending chain per sender
//! (ordered by nonce, no gaps served out of order), prioritises by fee,
//! and evicts the cheapest transactions under memory pressure — the
//! standard behaviour of deployed nodes, which the lifecycle's
//! "signatures are checked on admission" assumption rests on.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use crate::transaction::{Address, Transaction, TxId};

/// Why a transaction was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MempoolError {
    /// Signature verification failed.
    BadSignature,
    /// The pool already holds this transaction.
    Duplicate(TxId),
    /// A different transaction with the same `(sender, nonce)` and an
    /// equal-or-higher fee is already pending (replace-by-fee applies).
    Underpriced {
        /// Fee of the incumbent transaction.
        incumbent_fee: u64,
    },
    /// The pool is full and this transaction's fee does not beat the
    /// cheapest pending one.
    PoolFull,
}

impl fmt::Display for MempoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MempoolError::BadSignature => f.write_str("invalid signature"),
            MempoolError::Duplicate(id) => write!(f, "duplicate transaction {id}"),
            MempoolError::Underpriced { incumbent_fee } => {
                write!(f, "underpriced: pending fee is {incumbent_fee}")
            }
            MempoolError::PoolFull => f.write_str("pool full and fee too low"),
        }
    }
}

impl std::error::Error for MempoolError {}

#[derive(Clone, Debug)]
struct Entry {
    tx: Transaction,
    id: TxId,
}

/// A fee-prioritised, nonce-ordered transaction pool.
///
/// # Examples
///
/// ```
/// use ici_chain::mempool::Mempool;
/// use ici_chain::transaction::{Address, Transaction};
/// use ici_crypto::sig::Keypair;
///
/// let mut pool = Mempool::new(100);
/// let tx = Transaction::signed(
///     &Keypair::from_seed(0), Address::from_seed(1), 5, 2, 0, Vec::new(),
/// );
/// pool.insert(tx)?;
/// assert_eq!(pool.len(), 1);
/// let block_txs = pool.take_for_block(10);
/// assert_eq!(block_txs.len(), 1);
/// assert!(pool.is_empty());
/// # Ok::<(), ici_chain::mempool::MempoolError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Mempool {
    /// Per sender: nonce → entry. Both maps are BTreeMaps so iteration
    /// (eviction scans, block selection, `iter`) visits (sender, nonce)
    /// in a defined order — a HashMap here would make tie-breaks and
    /// `iter()` output depend on hasher state across runs.
    by_sender: BTreeMap<Address, BTreeMap<u64, Entry>>,
    /// Membership check only — never iterated.
    ids: HashSet<TxId>,
    capacity: usize,
    len: usize,
}

impl Mempool {
    /// Creates a pool bounded to `capacity` transactions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Mempool {
        // lint:allow(panic) -- documented `# Panics` contract; capacity
        // is a construction-time constant, never attacker-controlled
        assert!(capacity > 0, "capacity must be positive");
        Mempool {
            by_sender: BTreeMap::new(),
            ids: HashSet::new(),
            capacity,
            len: 0,
        }
    }

    /// Pending transactions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `id` is pending.
    pub fn contains(&self, id: &TxId) -> bool {
        self.ids.contains(id)
    }

    /// Admits `tx`, verifying its signature and applying replace-by-fee
    /// for `(sender, nonce)` collisions.
    ///
    /// # Errors
    ///
    /// See [`MempoolError`].
    pub fn insert(&mut self, tx: Transaction) -> Result<(), MempoolError> {
        if !tx.verify_signature() {
            return Err(MempoolError::BadSignature);
        }
        let id = tx.id();
        if self.ids.contains(&id) {
            return Err(MempoolError::Duplicate(id));
        }
        let sender = tx.sender_address();
        if let Some(existing) = self
            .by_sender
            .get(&sender)
            .and_then(|chain| chain.get(&tx.nonce()))
        {
            if existing.tx.fee() >= tx.fee() {
                return Err(MempoolError::Underpriced {
                    incumbent_fee: existing.tx.fee(),
                });
            }
            // Replace-by-fee: drop the incumbent.
            if let Some(old) = self
                .by_sender
                .get_mut(&sender)
                .and_then(|chain| chain.remove(&tx.nonce()))
            {
                self.ids.remove(&old.id);
                self.len -= 1;
            }
        }

        if self.len >= self.capacity {
            // Evict the globally cheapest pending transaction if this one
            // pays more; otherwise reject.
            let cheapest = self.cheapest();
            match cheapest {
                Some((fee, victim_sender, victim_nonce)) if tx.fee() > fee => {
                    if let Some(old) = self
                        .by_sender
                        .get_mut(&victim_sender)
                        .and_then(|chain| chain.remove(&victim_nonce))
                    {
                        self.ids.remove(&old.id);
                        self.len -= 1;
                    }
                    if self
                        .by_sender
                        .get(&victim_sender)
                        .is_some_and(|chain| chain.is_empty())
                    {
                        self.by_sender.remove(&victim_sender);
                    }
                }
                _ => return Err(MempoolError::PoolFull),
            }
        }

        self.ids.insert(id);
        self.by_sender
            .entry(sender)
            .or_default()
            .insert(tx.nonce(), Entry { tx, id });
        self.len += 1;
        Ok(())
    }

    fn cheapest(&self) -> Option<(u64, Address, u64)> {
        self.by_sender
            .iter()
            .flat_map(|(sender, chain)| {
                chain
                    .iter()
                    .map(move |(nonce, e)| (e.tx.fee(), *sender, *nonce))
            })
            .min()
    }

    /// Selects up to `max` transactions for a block: senders' chains are
    /// consumed in nonce order, highest head-fee first, so the result is
    /// executable as-is against a state that matches the pool's nonces.
    pub fn take_for_block(&mut self, max: usize) -> Vec<Transaction> {
        let mut picked = Vec::with_capacity(max.min(self.len));
        while picked.len() < max {
            // Head of each sender's chain, by fee.
            let best = self
                .by_sender
                .iter()
                .filter_map(|(sender, chain)| {
                    chain
                        .iter()
                        .next()
                        .map(|(nonce, e)| (e.tx.fee(), *sender, *nonce))
                })
                .max();
            let Some((_, sender, nonce)) = best else {
                break;
            };
            let Some(entry) = self
                .by_sender
                .get_mut(&sender)
                .and_then(|chain| chain.remove(&nonce))
            else {
                break;
            };
            self.ids.remove(&entry.id);
            self.len -= 1;
            if self
                .by_sender
                .get(&sender)
                .is_some_and(|chain| chain.is_empty())
            {
                self.by_sender.remove(&sender);
            }
            picked.push(entry.tx);
        }
        picked
    }

    /// Drops every pending transaction from `sender` with nonce below
    /// `next_nonce` — called after a block commits to clear included or
    /// stale entries. Returns how many were removed.
    pub fn prune_below(&mut self, sender: &Address, next_nonce: u64) -> usize {
        let Some(chain) = self.by_sender.get_mut(sender) else {
            return 0;
        };
        let stale: Vec<u64> = chain.range(..next_nonce).map(|(n, _)| *n).collect();
        for nonce in &stale {
            if let Some(e) = chain.remove(nonce) {
                self.ids.remove(&e.id);
                self.len -= 1;
            }
        }
        if chain.is_empty() {
            self.by_sender.remove(sender);
        }
        stale.len()
    }

    /// Iterates pending transactions in (sender, nonce) order.
    pub fn iter(&self) -> impl Iterator<Item = &Transaction> {
        self.by_sender
            .values()
            .flat_map(|chain| chain.values().map(|e| &e.tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_crypto::sig::Keypair;

    fn tx(seed: u64, nonce: u64, fee: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 100),
            1,
            fee,
            nonce,
            Vec::new(),
        )
    }

    #[test]
    fn insert_and_take_round_trip() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 0, 5)).expect("admits");
        pool.insert(tx(2, 0, 7)).expect("admits");
        assert_eq!(pool.len(), 2);
        let picked = pool.take_for_block(10);
        assert_eq!(picked.len(), 2);
        // Highest fee first.
        assert_eq!(picked[0].fee(), 7);
        assert!(pool.is_empty());
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 0, 5);
        pool.insert(t.clone()).expect("admits");
        assert!(matches!(pool.insert(t), Err(MempoolError::Duplicate(_))));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut pool = Mempool::new(10);
        let t = tx(1, 0, 5);
        let mut bytes = crate::codec::Encode::to_bytes(&t);
        bytes[60] ^= 1;
        let forged = <Transaction as crate::codec::Decode>::from_bytes(&bytes).expect("decodes");
        assert_eq!(pool.insert(forged), Err(MempoolError::BadSignature));
    }

    /// Same (sender, nonce) but a distinct payload, so ids differ and the
    /// replace-by-fee path (not the duplicate path) is exercised.
    fn tx_variant(seed: u64, nonce: u64, fee: u64, tag: u8) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 100),
            1,
            fee,
            nonce,
            vec![tag],
        )
    }

    #[test]
    fn replace_by_fee() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 0, 5)).expect("admits");
        // Same (sender, nonce), equal/lower fee → rejected.
        assert!(matches!(
            pool.insert(tx_variant(1, 0, 5, 0xAA)),
            Err(MempoolError::Underpriced { incumbent_fee: 5 })
        ));
        assert!(matches!(
            pool.insert(tx_variant(1, 0, 4, 0xAB)),
            Err(MempoolError::Underpriced { .. })
        ));
        // Higher fee replaces.
        pool.insert(tx_variant(1, 0, 9, 0xAC)).expect("replaces");
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.take_for_block(1)[0].fee(), 9);
    }

    #[test]
    fn nonce_order_is_preserved_per_sender() {
        let mut pool = Mempool::new(10);
        pool.insert(tx(1, 2, 50)).expect("admits");
        pool.insert(tx(1, 0, 1)).expect("admits");
        pool.insert(tx(1, 1, 10)).expect("admits");
        let picked = pool.take_for_block(10);
        let nonces: Vec<u64> = picked.iter().map(|t| t.nonce()).collect();
        assert_eq!(
            nonces,
            vec![0, 1, 2],
            "sender chain must serve in nonce order"
        );
    }

    #[test]
    fn eviction_prefers_cheapest() {
        let mut pool = Mempool::new(2);
        pool.insert(tx(1, 0, 1)).expect("admits");
        pool.insert(tx(2, 0, 5)).expect("admits");
        // Fee 3 beats the cheapest (1) → evicts it.
        pool.insert(tx(3, 0, 3)).expect("evicts cheapest");
        assert_eq!(pool.len(), 2);
        let fees: Vec<u64> = pool.iter().map(|t| t.fee()).collect();
        assert!(!fees.contains(&1));
        // Fee 2 does not beat the new cheapest (3) → rejected.
        assert_eq!(pool.insert(tx(4, 0, 2)), Err(MempoolError::PoolFull));
    }

    #[test]
    fn prune_below_clears_committed_nonces() {
        let mut pool = Mempool::new(10);
        for nonce in 0..5 {
            pool.insert(tx(1, nonce, 2)).expect("admits");
        }
        let sender = Address::from_seed(1);
        assert_eq!(pool.prune_below(&sender, 3), 3);
        assert_eq!(pool.len(), 2);
        let nonces: Vec<u64> = pool.iter().map(|t| t.nonce()).collect();
        assert!(nonces.contains(&3) && nonces.contains(&4));
        // Pruning an unknown sender is a no-op.
        assert_eq!(pool.prune_below(&Address::from_seed(9), 10), 0);
    }

    #[test]
    fn take_respects_max() {
        let mut pool = Mempool::new(10);
        for seed in 0..6 {
            pool.insert(tx(seed, 0, seed + 1)).expect("admits");
        }
        let picked = pool.take_for_block(4);
        assert_eq!(picked.len(), 4);
        assert_eq!(pool.len(), 2);
        // Fees picked are the 4 highest.
        let fees: Vec<u64> = picked.iter().map(|t| t.fee()).collect();
        assert_eq!(fees, vec![6, 5, 4, 3]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Mempool::new(0);
    }

    #[test]
    fn contains_tracks_ids() {
        let mut pool = Mempool::new(4);
        let t = tx(1, 0, 2);
        let id = t.id();
        assert!(!pool.contains(&id));
        pool.insert(t).expect("admits");
        assert!(pool.contains(&id));
        pool.take_for_block(1);
        assert!(!pool.contains(&id));
    }
}
