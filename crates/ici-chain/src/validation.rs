//! Full block validation.
//!
//! [`validate_block`] is the single source of truth for whether a block
//! extends a chain correctly: linkage, header/body consistency, signatures,
//! state execution, and the `state_root` commitment. Both the ICIStrategy
//! collaborative verifier and the baselines call into it (the collaborative
//! verifier additionally lets different cluster members run
//! [`verify_tx_range`] on disjoint slices).

use std::error::Error;
use std::fmt;

use crate::block::{Block, BlockHeader};
use crate::state::{StateCommitment, StateError, WorldState};
use crate::transaction::Address;

/// Why a block failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// Height is not `parent.height + 1`.
    WrongHeight {
        /// Height expected.
        expected: u64,
        /// Height carried by the block.
        actual: u64,
    },
    /// `parent` field does not match the parent header's id.
    WrongParent,
    /// Timestamp not strictly after the parent's.
    NonMonotonicTimestamp,
    /// A transaction failed state validation.
    BadTransaction {
        /// Index of the offending transaction.
        index: usize,
        /// The underlying state error.
        error: StateError,
    },
    /// Declared `state_root` does not match the executed post-state.
    StateRootMismatch,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::WrongHeight { expected, actual } => {
                write!(f, "expected height {expected}, got {actual}")
            }
            ValidationError::WrongParent => f.write_str("parent id mismatch"),
            ValidationError::NonMonotonicTimestamp => f.write_str("timestamp not after parent's"),
            ValidationError::BadTransaction { index, error } => {
                write!(f, "transaction {index} invalid: {error}")
            }
            ValidationError::StateRootMismatch => {
                f.write_str("state root does not match execution")
            }
        }
    }
}

impl Error for ValidationError {}

/// Validates `block` as the child of `parent`, executing it on a copy of
/// `pre_state`. Returns the post-state on success.
///
/// Assumes `block` is internally consistent (guaranteed by construction via
/// [`Block::new`] / [`Block::from_parts`] / decoding).
///
/// # Errors
///
/// The first [`ValidationError`] encountered, checked in the order: linkage,
/// timestamp, per-transaction execution, state root.
pub fn validate_block(
    block: &Block,
    parent: &BlockHeader,
    pre_state: &WorldState,
) -> Result<WorldState, ValidationError> {
    validate_block_with_commitment(block, parent, pre_state, StateCommitment::FlatV1)
}

/// [`validate_block`] with an explicit header-commitment mode: blocks
/// sealed under the v2 sharded commitment are checked against
/// [`WorldState::sharded_root`] instead of the flat v1 root.
///
/// # Errors
///
/// Same as [`validate_block`].
pub fn validate_block_with_commitment(
    block: &Block,
    parent: &BlockHeader,
    pre_state: &WorldState,
    commitment: StateCommitment,
) -> Result<WorldState, ValidationError> {
    let mut state = pre_state.clone();
    validate_block_in_place(block, parent, &mut state, commitment)?;
    Ok(state)
}

/// [`validate_block_with_commitment`] executing directly on `state`
/// instead of cloning it — the scale path, where a validator advances
/// one long-lived state per chain and a per-block O(accounts) copy
/// would dominate.
///
/// On success `state` is the post-state. On a linkage/timestamp error
/// `state` is untouched; on an execution or root-mismatch error it is
/// left mid-block (transactions before the failure applied), exactly
/// like [`WorldState::apply_block`] — callers that need rollback
/// should use the cloning variant.
///
/// # Errors
///
/// Same as [`validate_block`].
pub fn validate_block_in_place(
    block: &Block,
    parent: &BlockHeader,
    state: &mut WorldState,
    commitment: StateCommitment,
) -> Result<(), ValidationError> {
    let _span = ici_telemetry::span!("chain/block_validate");
    let header = block.header();
    if header.height != parent.height + 1 {
        return Err(ValidationError::WrongHeight {
            expected: parent.height + 1,
            actual: header.height,
        });
    }
    if header.parent != parent.id() {
        return Err(ValidationError::WrongParent);
    }
    if header.timestamp_ms <= parent.timestamp_ms {
        return Err(ValidationError::NonMonotonicTimestamp);
    }

    state
        .apply_block(block)
        .map_err(|(index, error)| ValidationError::BadTransaction { index, error })?;

    if state.root_for(commitment) != header.state_root {
        return Err(ValidationError::StateRootMismatch);
    }
    Ok(())
}

/// Verifies a contiguous transaction range `[start, end)` of `block`
/// *stamp-only*: signature and well-formedness checks that need no state.
///
/// This is the unit of work the ICIStrategy collaborative verifier hands to
/// each cluster member: node `i` of `c` members checks roughly `1/c` of the
/// block's signatures; state execution (which is inherently sequential) is
/// done once by the leader and cross-checked through `state_root`.
///
/// Returns the index of the first transaction with an invalid signature, or
/// `Ok(checked)` with the number checked.
///
/// # Errors
///
/// The index of the first failing transaction.
pub fn verify_tx_range(block: &Block, start: usize, end: usize) -> Result<usize, usize> {
    let _span = ici_telemetry::span!("chain/verify_tx_range");
    let txs = block.transactions();
    let end = end.min(txs.len());
    let start = start.min(end);
    for (offset, tx) in txs[start..end].iter().enumerate() {
        if !tx.verify_signature() {
            return Err(start + offset);
        }
    }
    Ok(end - start)
}

/// Splits `tx_count` transactions into `parts` contiguous ranges of
/// near-equal size, for distributing verification work across a cluster.
/// Returns `(start, end)` pairs; some may be empty if `parts > tx_count`.
pub fn split_ranges(tx_count: usize, parts: usize) -> Vec<(usize, usize)> {
    if parts == 0 {
        return Vec::new();
    }
    let base = tx_count / parts;
    let extra = tx_count % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// Validates a header-only chain: linkage and monotonic timestamps, no
/// execution. What a bootstrapping node runs over a downloaded header chain
/// before fetching any bodies.
///
/// # Errors
///
/// The height at which linkage first breaks.
pub fn validate_header_chain(headers: &[BlockHeader]) -> Result<(), u64> {
    for pair in headers.windows(2) {
        let (parent, child) = (&pair[0], &pair[1]);
        if child.height != parent.height + 1
            || child.parent != parent.id()
            || child.timestamp_ms <= parent.timestamp_ms
        {
            return Err(child.height);
        }
    }
    Ok(())
}

/// Computes the fee total of a block (what the proposer earns).
pub fn block_fees(block: &Block) -> u64 {
    block.transactions().iter().map(|tx| tx.fee()).sum()
}

/// The address credited with a block's fees.
pub fn fee_collector(header: &BlockHeader) -> Address {
    Address::from_seed(header.proposer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BlockBuilder;
    use crate::genesis::GenesisConfig;
    use crate::transaction::Transaction;
    use ici_crypto::sig::Keypair;

    fn setup() -> (Block, WorldState) {
        let cfg = GenesisConfig::uniform(8, 10_000);
        (cfg.genesis_block(), cfg.initial_state())
    }

    fn transfer(seed: u64, nonce: u64, amount: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 1),
            amount,
            1,
            nonce,
            Vec::new(),
        )
    }

    fn child_of(genesis: &Block, state: &WorldState, n_txs: u64) -> Block {
        let mut b = BlockBuilder::new(genesis.header(), state.clone(), 2, 1_000);
        for i in 0..n_txs {
            b.push(transfer(i, 0, 10)).expect("valid");
        }
        b.seal()
    }

    #[test]
    fn valid_block_passes_and_returns_post_state() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 3);
        let post = validate_block(&block, genesis.header(), &state).expect("valid block");
        assert_eq!(post.root(), block.header().state_root);
        assert_eq!(post.nonce(&Address::from_seed(0)), 1);
    }

    #[test]
    fn wrong_height_rejected() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 1);
        let (mut header, body) = block.into_parts();
        header.height = 5;
        let forged = Block::new(header, body);
        assert!(matches!(
            validate_block(&forged, genesis.header(), &state),
            Err(ValidationError::WrongHeight {
                expected: 1,
                actual: 5
            })
        ));
    }

    #[test]
    fn wrong_parent_rejected() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 1);
        let (mut header, body) = block.into_parts();
        header.parent = ici_crypto::sha256::Digest::ZERO;
        let forged = Block::new(header, body);
        assert_eq!(
            validate_block(&forged, genesis.header(), &state),
            Err(ValidationError::WrongParent)
        );
    }

    #[test]
    fn stale_timestamp_rejected() {
        let (genesis, state) = setup();
        let block = {
            let b = BlockBuilder::new(genesis.header(), state.clone(), 2, 0);
            b.seal() // timestamp 0 == genesis timestamp
        };
        assert_eq!(
            validate_block(&block, genesis.header(), &state),
            Err(ValidationError::NonMonotonicTimestamp)
        );
    }

    #[test]
    fn bad_state_root_rejected() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 1);
        let (mut header, body) = block.into_parts();
        header.state_root = ici_crypto::sha256::Digest::ZERO;
        let forged = Block::new(header, body);
        assert_eq!(
            validate_block(&forged, genesis.header(), &state),
            Err(ValidationError::StateRootMismatch)
        );
    }

    #[test]
    fn invalid_transaction_rejected_with_index() {
        let (genesis, state) = setup();
        // Build a block with a transaction the pre-state cannot afford by
        // sealing against a richer scratch state.
        let rich = WorldState::with_balances([(Address::from_seed(0), 1_000_000)]);
        let mut b = BlockBuilder::new(genesis.header(), rich, 2, 1_000);
        b.push(transfer(0, 0, 500_000))
            .expect("valid against rich state");
        let block = b.seal();
        assert!(matches!(
            validate_block(&block, genesis.header(), &state),
            Err(ValidationError::BadTransaction { index: 0, .. })
        ));
    }

    #[test]
    fn tx_range_verification_covers_block_in_parts() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 7);
        let ranges = split_ranges(block.transactions().len(), 3);
        let mut total = 0;
        for (start, end) in ranges {
            total += verify_tx_range(&block, start, end).expect("all signatures valid");
        }
        assert_eq!(total, 7);
    }

    #[test]
    fn tx_range_reports_first_bad_signature() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 3);
        let (header, mut body) = block.into_parts();
        // Corrupt the signature of tx 1 by re-signing a different payload.
        body[1] = {
            let mut bytes = crate::codec::Encode::to_bytes(&body[1]);
            let last = bytes.len() - 1;
            bytes[last] ^= 1; // inside the signature field
            <Transaction as crate::codec::Decode>::from_bytes(&bytes).expect("decodes")
        };
        let tampered = Block::new(header, body);
        assert_eq!(verify_tx_range(&tampered, 0, 3), Err(1));
        // A range that excludes the bad index passes.
        assert_eq!(verify_tx_range(&tampered, 2, 3), Ok(1));
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for (count, parts) in [(10, 3), (3, 10), (0, 4), (16, 4), (7, 1)] {
            let ranges = split_ranges(count, parts);
            assert_eq!(ranges.len(), parts);
            let mut covered = 0;
            let mut cursor = 0;
            for (s, e) in ranges {
                assert_eq!(s, cursor);
                assert!(e >= s);
                covered += e - s;
                cursor = e;
            }
            assert_eq!(covered, count, "count={count} parts={parts}");
        }
        assert!(split_ranges(5, 0).is_empty());
    }

    #[test]
    fn header_chain_validation() {
        let (genesis, state) = setup();
        let b1 = child_of(&genesis, &state, 2);
        let post = validate_block(&b1, genesis.header(), &state).expect("valid");
        let b2 = {
            let builder = BlockBuilder::new(b1.header(), post, 3, 2_000);
            builder.seal()
        };
        let headers = vec![*genesis.header(), *b1.header(), *b2.header()];
        assert_eq!(validate_header_chain(&headers), Ok(()));

        let broken = vec![*genesis.header(), *b2.header()];
        assert_eq!(validate_header_chain(&broken), Err(2));
    }

    #[test]
    fn v2_commitment_round_trip() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state.clone(), 2, 1_000);
        b.commitment(StateCommitment::ShardedV2);
        for i in 0..3 {
            b.push(transfer(i, 0, 10)).expect("valid");
        }
        let block = b.seal();
        // The v1 path must reject a v2 header (domain separation)…
        assert_eq!(
            validate_block(&block, genesis.header(), &state),
            Err(ValidationError::StateRootMismatch)
        );
        // …while the v2 path accepts it, cloning and in place alike.
        let post = validate_block_with_commitment(
            &block,
            genesis.header(),
            &state,
            StateCommitment::ShardedV2,
        )
        .expect("valid under v2");
        let mut in_place = state.clone();
        validate_block_in_place(
            &block,
            genesis.header(),
            &mut in_place,
            StateCommitment::ShardedV2,
        )
        .expect("valid under v2");
        assert_eq!(post, in_place);
        assert_eq!(post.nonce(&Address::from_seed(0)), 1);
    }

    #[test]
    fn fees_accrue_to_proposer() {
        let (genesis, state) = setup();
        let block = child_of(&genesis, &state, 4);
        assert_eq!(block_fees(&block), 4);
        assert_eq!(fee_collector(block.header()), Address::from_seed(2));
        let post = validate_block(&block, genesis.header(), &state).expect("valid");
        assert_eq!(
            post.balance(&Address::from_seed(2)),
            10_000 - 10 - 1 + 4 + 10
        );
        // seed 2 started with 10_000, sent 10+1 as a sender (tx i=2), earned
        // 4 in fees, and received 10 from tx i=1 (seed 1 -> seed 2).
    }
}
