//! Genesis configuration.
//!
//! Every simulated network — ICIStrategy and both baselines — starts from a
//! [`GenesisConfig`]: an initial coin allocation plus a timestamp. The
//! config deterministically yields the genesis block and the initial
//! [`WorldState`], so every node agrees on height 0 without communication.

use crate::block::{Block, BlockHeader};
use crate::state::WorldState;
use crate::transaction::Address;
use ici_crypto::sha256::Digest;

/// Parameters of the chain's origin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenesisConfig {
    allocations: Vec<(Address, u64)>,
    timestamp_ms: u64,
}

impl GenesisConfig {
    /// Creates a config with explicit allocations.
    pub fn new(allocations: Vec<(Address, u64)>, timestamp_ms: u64) -> GenesisConfig {
        GenesisConfig {
            allocations,
            timestamp_ms,
        }
    }

    /// Convenience: funds accounts with seeds `0..accounts`, each holding
    /// `balance` coins. Matches the workload generators, which draw senders
    /// from the same seed range.
    pub fn uniform(accounts: u64, balance: u64) -> GenesisConfig {
        GenesisConfig {
            allocations: (0..accounts)
                .map(|seed| (Address::from_seed(seed), balance))
                .collect(),
            timestamp_ms: 0,
        }
    }

    /// The initial allocations.
    pub fn allocations(&self) -> &[(Address, u64)] {
        &self.allocations
    }

    /// Genesis timestamp in milliseconds.
    pub fn timestamp_ms(&self) -> u64 {
        self.timestamp_ms
    }

    /// Builds the initial world state.
    pub fn initial_state(&self) -> WorldState {
        WorldState::with_balances(self.allocations.iter().copied())
    }

    /// Builds the genesis block: height 0, zero parent, empty body, state
    /// root committing to the initial allocations.
    pub fn genesis_block(&self) -> Block {
        let state = self.initial_state();
        Block::new(
            BlockHeader {
                height: 0,
                parent: Digest::ZERO,
                tx_root: Digest::ZERO,
                state_root: state.root(),
                timestamp_ms: self.timestamp_ms,
                proposer: 0,
                pow_nonce: 0,
                tx_count: 0,
                body_len: 0,
            },
            Vec::new(),
        )
    }
}

impl Default for GenesisConfig {
    /// A small default universe: 64 accounts with 1,000,000 coins each.
    fn default() -> GenesisConfig {
        GenesisConfig::uniform(64, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_deterministic() {
        let a = GenesisConfig::uniform(10, 500);
        let b = GenesisConfig::uniform(10, 500);
        assert_eq!(a.genesis_block().id(), b.genesis_block().id());
    }

    #[test]
    fn genesis_commits_to_allocations() {
        let a = GenesisConfig::uniform(10, 500);
        let b = GenesisConfig::uniform(10, 501);
        assert_ne!(a.genesis_block().id(), b.genesis_block().id());
    }

    #[test]
    fn initial_state_matches_allocations() {
        let cfg = GenesisConfig::uniform(5, 100);
        let state = cfg.initial_state();
        assert_eq!(state.total_supply(), 500);
        for seed in 0..5 {
            assert_eq!(state.balance(&Address::from_seed(seed)), 100);
            assert_eq!(state.nonce(&Address::from_seed(seed)), 0);
        }
        assert_eq!(cfg.genesis_block().header().state_root, state.root());
    }

    #[test]
    fn genesis_block_shape() {
        let block = GenesisConfig::default().genesis_block();
        assert_eq!(block.height(), 0);
        assert_eq!(block.header().parent, Digest::ZERO);
        assert!(block.transactions().is_empty());
    }
}
