//! Block assembly.
//!
//! A proposer collects pending transactions, validates each against a
//! scratch copy of the state (so an invalid transaction never poisons a
//! proposal), and seals a block whose `state_root` commits to the
//! post-execution state.

use crate::block::{Block, BlockHeader, BlockId, Height};
use crate::state::{StateCommitment, StateError, WorldState};
use crate::transaction::{Address, Transaction};

/// Incrementally assembles the next block.
///
/// # Examples
///
/// ```
/// use ici_chain::builder::BlockBuilder;
/// use ici_chain::genesis::GenesisConfig;
/// use ici_chain::transaction::{Address, Transaction};
/// use ici_crypto::sig::Keypair;
///
/// let genesis_cfg = GenesisConfig::uniform(4, 1_000);
/// let genesis = genesis_cfg.genesis_block();
/// let state = genesis_cfg.initial_state();
///
/// let mut builder = BlockBuilder::new(genesis.header(), state, 7, 1_000);
/// let tx = Transaction::signed(
///     &Keypair::from_seed(0), Address::from_seed(1), 10, 1, 0, Vec::new(),
/// );
/// builder.push(tx).expect("valid transaction");
/// let block = builder.seal();
/// assert_eq!(block.height(), 1);
/// assert_eq!(block.transactions().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BlockBuilder {
    height: Height,
    parent: BlockId,
    proposer: u64,
    timestamp_ms: u64,
    state: WorldState,
    fee_collector: Address,
    transactions: Vec<Transaction>,
    body_len: usize,
    max_txs: usize,
    max_body_bytes: usize,
    commitment: StateCommitment,
}

/// Why a transaction was not added to the block under construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The block already holds `max_txs` transactions.
    TxLimitReached(usize),
    /// Adding the transaction would exceed `max_body_bytes`.
    SizeLimitReached {
        /// Configured byte budget.
        limit: usize,
        /// Bytes already committed plus the candidate.
        would_be: usize,
    },
    /// The transaction fails state validation at this point in the block.
    Invalid(StateError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::TxLimitReached(n) => write!(f, "block already holds {n} transactions"),
            BuildError::SizeLimitReached { limit, would_be } => {
                write!(f, "body would be {would_be} bytes, limit {limit}")
            }
            BuildError::Invalid(e) => write!(f, "invalid transaction: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl BlockBuilder {
    /// Default per-block transaction cap.
    pub const DEFAULT_MAX_TXS: usize = 4_096;
    /// Default per-block body byte budget (1 MiB, Bitcoin-like).
    pub const DEFAULT_MAX_BODY_BYTES: usize = 1 << 20;

    /// Starts a block extending `parent`, executing against `state` (the
    /// post-state of `parent`), proposed by node `proposer` at
    /// `timestamp_ms`.
    pub fn new(
        parent: &BlockHeader,
        state: WorldState,
        proposer: u64,
        timestamp_ms: u64,
    ) -> BlockBuilder {
        BlockBuilder {
            height: parent.height + 1,
            parent: parent.id(),
            proposer,
            timestamp_ms,
            fee_collector: Address::from_seed(proposer),
            state,
            transactions: Vec::new(),
            body_len: 0,
            max_txs: BlockBuilder::DEFAULT_MAX_TXS,
            max_body_bytes: BlockBuilder::DEFAULT_MAX_BODY_BYTES,
            commitment: StateCommitment::FlatV1,
        }
    }

    /// Selects which state commitment the sealed header carries
    /// (default: the flat v1 root, matching historical blocks).
    pub fn commitment(&mut self, commitment: StateCommitment) -> &mut BlockBuilder {
        self.commitment = commitment;
        self
    }

    /// Overrides the transaction-count cap.
    pub fn max_txs(&mut self, max: usize) -> &mut BlockBuilder {
        self.max_txs = max;
        self
    }

    /// Overrides the body byte budget.
    pub fn max_body_bytes(&mut self, max: usize) -> &mut BlockBuilder {
        self.max_body_bytes = max;
        self
    }

    /// Transactions accepted so far.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether no transaction has been accepted.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Validates and appends `tx`.
    ///
    /// # Errors
    ///
    /// [`BuildError`] if a cap is hit or the transaction is invalid against
    /// the in-progress state; the builder is unchanged on error.
    pub fn push(&mut self, tx: Transaction) -> Result<(), BuildError> {
        if self.transactions.len() >= self.max_txs {
            return Err(BuildError::TxLimitReached(self.transactions.len()));
        }
        let tx_len = crate::codec::Encode::encoded_len(&tx);
        let would_be = self.body_len + tx_len;
        if would_be > self.max_body_bytes {
            return Err(BuildError::SizeLimitReached {
                limit: self.max_body_bytes,
                would_be,
            });
        }
        self.state
            .apply(&tx, self.fee_collector)
            .map_err(BuildError::Invalid)?;
        self.body_len = would_be;
        self.transactions.push(tx);
        Ok(())
    }

    /// Fills the block greedily from `pending`, skipping transactions that
    /// fail, until a cap is reached. Returns how many were accepted.
    pub fn fill<I>(&mut self, pending: I) -> usize
    where
        I: IntoIterator<Item = Transaction>,
    {
        let mut accepted = 0;
        for tx in pending {
            match self.push(tx) {
                Ok(()) => accepted += 1,
                Err(BuildError::Invalid(_)) => continue,
                Err(_) => break, // caps reached
            }
        }
        accepted
    }

    /// Seals the block, consuming the builder.
    pub fn seal(mut self) -> Block {
        let _span = ici_telemetry::span!("chain/block_build");
        ici_telemetry::observe(
            "chain/block_txs",
            ici_telemetry::Label::Global,
            self.transactions.len() as u64,
        );
        let state_root = self.state.root_for(self.commitment);
        Block::new(
            BlockHeader {
                height: self.height,
                parent: self.parent,
                tx_root: ici_crypto::sha256::Digest::ZERO, // filled by Block::new
                state_root,
                timestamp_ms: self.timestamp_ms,
                proposer: self.proposer,
                pow_nonce: 0,
                tx_count: 0,
                body_len: 0,
            },
            self.transactions,
        )
    }

    /// Seals and also returns the post-state (so the proposer need not
    /// re-execute its own block).
    pub fn seal_with_state(self) -> (Block, WorldState) {
        let state = self.state.clone();
        (self.seal(), state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genesis::GenesisConfig;
    use ici_crypto::sig::Keypair;

    fn setup() -> (Block, WorldState) {
        let cfg = GenesisConfig::uniform(8, 10_000);
        (cfg.genesis_block(), cfg.initial_state())
    }

    fn transfer(seed: u64, nonce: u64, amount: u64) -> Transaction {
        Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 1),
            amount,
            1,
            nonce,
            Vec::new(),
        )
    }

    #[test]
    fn sealed_block_links_to_parent() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 3, 500);
        b.push(transfer(0, 0, 10)).expect("valid");
        let block = b.seal();
        assert_eq!(block.height(), 1);
        assert_eq!(block.header().parent, genesis.id());
        assert_eq!(block.header().proposer, 3);
        assert_eq!(block.header().timestamp_ms, 500);
    }

    #[test]
    fn state_root_commits_to_execution() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state.clone(), 3, 500);
        b.push(transfer(0, 0, 10)).expect("valid");
        let (block, post) = b.seal_with_state();
        assert_eq!(block.header().state_root, post.root());
        assert_ne!(block.header().state_root, state.root());

        // Independent re-execution reaches the same root.
        let mut replay = state;
        replay.apply_block(&block).expect("replays");
        assert_eq!(replay.root(), block.header().state_root);
    }

    #[test]
    fn invalid_transactions_are_rejected_not_included() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 1, 0);
        // Overspend.
        let err = b.push(transfer(0, 0, 1_000_000)).expect_err("overspend");
        assert!(matches!(
            err,
            BuildError::Invalid(StateError::InsufficientBalance { .. })
        ));
        assert!(b.is_empty());
        // A valid one still goes through afterwards.
        b.push(transfer(0, 0, 10)).expect("valid");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sequential_nonces_within_one_block() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 1, 0);
        b.push(transfer(0, 0, 10)).expect("nonce 0");
        b.push(transfer(0, 1, 10)).expect("nonce 1");
        let err = b.push(transfer(0, 1, 10)).expect_err("nonce reuse");
        assert!(matches!(
            err,
            BuildError::Invalid(StateError::BadNonce { .. })
        ));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn tx_cap_is_enforced() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 1, 0);
        b.max_txs(2);
        b.push(transfer(0, 0, 1)).expect("1st");
        b.push(transfer(1, 0, 1)).expect("2nd");
        assert_eq!(
            b.push(transfer(2, 0, 1)),
            Err(BuildError::TxLimitReached(2))
        );
    }

    #[test]
    fn byte_cap_is_enforced() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 1, 0);
        b.max_body_bytes(200);
        b.push(transfer(0, 0, 1)).expect("fits");
        let err = b.push(transfer(1, 0, 1)).expect_err("exceeds 200 bytes");
        assert!(matches!(err, BuildError::SizeLimitReached { .. }));
    }

    #[test]
    fn fill_skips_invalid_and_stops_at_caps() {
        let (genesis, state) = setup();
        let mut b = BlockBuilder::new(genesis.header(), state, 1, 0);
        b.max_txs(3);
        let pending = vec![
            transfer(0, 0, 10),
            transfer(0, 5, 10), // bad nonce — skipped
            transfer(1, 0, 10),
            transfer(2, 0, 10),
            transfer(3, 0, 10), // over the cap — fill stops
        ];
        let accepted = b.fill(pending);
        assert_eq!(accepted, 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn empty_block_seals() {
        let (genesis, state) = setup();
        let block = BlockBuilder::new(genesis.header(), state.clone(), 1, 9).seal();
        assert_eq!(block.transactions().len(), 0);
        assert_eq!(block.header().state_root, state.root());
    }
}
