//! Streaming digests of encodable values.
//!
//! `double_sha256(&value.to_bytes())` materializes the canonical
//! encoding in a throwaway `Vec` on every call — on the block pipeline
//! that is one heap allocation per header id, transaction id, and
//! Merkle leaf. The helpers here stream the encoding straight into the
//! hasher through [`Writer::hashing`], producing byte-identical digests
//! with zero intermediate allocations. The `ici-lint` `rehash` rule
//! steers protocol code toward this module.

use ici_crypto::merkle;
use ici_crypto::sha256::{double_sha256, Digest, Sha256};

use crate::codec::{Encode, Writer};

/// SHA-256 of `value`'s canonical encoding, streamed.
pub fn digest_encodable<T: Encode + ?Sized>(value: &T) -> Digest {
    let mut w = Writer::hashing(Sha256::new());
    value.encode(&mut w);
    w.into_digest()
}

/// Double-SHA-256 of `value`'s canonical encoding, streamed. Equals
/// `double_sha256(&value.to_bytes())` without materializing the bytes.
pub fn double_sha256_encodable<T: Encode + ?Sized>(value: &T) -> Digest {
    Sha256::digest(digest_encodable(value).as_bytes())
}

/// Merkle leaf hash of `value`'s canonical encoding, streamed. Equals
/// `merkle::hash_leaf(&value.to_bytes())`.
pub fn leaf_hash_encodable<T: Encode + ?Sized>(value: &T) -> Digest {
    let mut w = Writer::hashing(merkle::leaf_hasher());
    value.encode(&mut w);
    Sha256::digest(w.into_digest().as_bytes())
}

/// Two-pass reference implementation: materializes the encoding, then
/// double-hashes it. This is the definition the streaming helpers are
/// pinned against in the equivalence suite; protocol code must use
/// [`double_sha256_encodable`] instead.
pub fn double_sha256_of_bytes<T: Encode + ?Sized>(value: &T) -> Digest {
    // lint:allow(rehash) -- the reference the streaming path is pinned against
    double_sha256(&value.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_digest_matches_materialized() {
        let values: Vec<Vec<u8>> = vec![Vec::new(), vec![1, 2, 3], vec![0xAB; 4096]];
        for v in &values {
            assert_eq!(digest_encodable(v), Sha256::digest(&v.to_bytes()));
            assert_eq!(double_sha256_encodable(v), double_sha256_of_bytes(v));
            assert_eq!(leaf_hash_encodable(v), merkle::hash_leaf(&v.to_bytes()));
        }
    }

    #[test]
    fn streaming_digest_covers_multi_field_values() {
        // A value whose encoding spans several put_* calls and crosses
        // the hasher's 64-byte block boundary.
        let v: Vec<u64> = (0..40).collect();
        assert_eq!(double_sha256_encodable(&v), double_sha256_of_bytes(&v));
    }
}
