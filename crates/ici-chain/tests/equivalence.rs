//! Equivalence suite for the zero-copy block pipeline.
//!
//! Every optimization in the pipeline — streaming digests, cached header
//! ids, `Arc`-shared bodies, `encoded_len` size hints — is pinned here
//! against the plain two-pass reference it replaced: materialize the
//! canonical encoding, then hash or measure it. A divergence anywhere in
//! these tests means the fast path changed wire bytes or identities.

use std::sync::Arc;

use ici_chain::block::{Block, BlockHeader};
use ici_chain::codec::Encode;
use ici_chain::genesis::GenesisConfig;
use ici_chain::hashing;
use ici_chain::store::ChainStore;
use ici_chain::transaction::{Address, Transaction};
use ici_crypto::merkle;
use ici_crypto::sha256::{double_sha256, Sha256};
use ici_crypto::sig::Keypair;
use ici_rng::Xoshiro256;

fn arb_tx(rng: &mut Xoshiro256) -> Transaction {
    Transaction::signed(
        &Keypair::from_seed(rng.gen_range(0u64..64)),
        Address::from_seed(rng.gen_range(0u64..64)),
        rng.next_u64(),
        rng.gen_range(0u64..1_000),
        rng.gen_range(0u64..10),
        rng.gen_bytes_in(0usize..200),
    )
}

fn arb_block(rng: &mut Xoshiro256, height: u64) -> Block {
    let txs: Vec<Transaction> = (0..rng.gen_range(1usize..12))
        .map(|_| arb_tx(rng))
        .collect();
    let template = BlockHeader {
        height,
        parent: hashing::digest_encodable(&height),
        tx_root: ici_crypto::sha256::Digest::ZERO,
        state_root: hashing::digest_encodable(&rng.next_u64()),
        timestamp_ms: rng.gen_range(1u64..1 << 40),
        proposer: rng.gen_range(0u64..512),
        pow_nonce: 0,
        tx_count: 0,
        body_len: 0,
    };
    Block::new(template, txs)
}

/// Streaming digests equal hashing the materialized encoding, for real
/// protocol values (not just synthetic byte strings).
#[test]
fn streaming_digests_match_two_pass_reference() {
    let mut rng = Xoshiro256::seed_from_u64(0xE1);
    for i in 0..64u64 {
        let tx = arb_tx(&mut rng);
        let block = arb_block(&mut rng, i);
        let header = *block.header();
        assert_eq!(
            hashing::digest_encodable(&tx),
            Sha256::digest(&tx.to_bytes())
        );
        assert_eq!(
            hashing::digest_encodable(&header),
            Sha256::digest(&header.to_bytes())
        );
        assert_eq!(
            hashing::double_sha256_encodable(&tx),
            double_sha256(&tx.to_bytes())
        );
        assert_eq!(
            hashing::double_sha256_encodable(&header),
            double_sha256(&header.to_bytes())
        );
        assert_eq!(
            hashing::leaf_hash_encodable(&tx),
            merkle::hash_leaf(&tx.to_bytes())
        );
        assert_eq!(hashing::double_sha256_of_bytes(&tx), tx.id());
    }
}

/// `encoded_len` is byte-exact against the materialized encoding for
/// every wire type the pipeline pre-sizes buffers with.
#[test]
fn encoded_len_is_exact() {
    let mut rng = Xoshiro256::seed_from_u64(0xE2);
    let mut store = ChainStore::new();
    let genesis = GenesisConfig::default().genesis_block();
    store.append_block(&genesis).expect("genesis appends");
    for i in 0..32u64 {
        let tx = arb_tx(&mut rng);
        assert_eq!(tx.to_bytes().len(), tx.encoded_len(), "tx {i}");
        let block = arb_block(&mut rng, i + 1);
        assert_eq!(
            block.header().to_bytes().len(),
            block.header().encoded_len(),
            "header {i}"
        );
        assert_eq!(block.to_bytes().len(), block.encoded_len(), "block {i}");
        let body: Vec<Transaction> = block.transactions().to_vec();
        assert_eq!(body.to_bytes().len(), body.encoded_len(), "body {i}");
    }
    assert_eq!(store.to_bytes().len(), store.encoded_len(), "chain store");
}

/// The cached block id equals a fresh double-SHA-256 of the header
/// encoding, across every construction path a block can take.
#[test]
fn cached_block_id_matches_fresh_header_hash() {
    let mut rng = Xoshiro256::seed_from_u64(0xE3);
    for i in 0..32u64 {
        let block = arb_block(&mut rng, i);
        let fresh = double_sha256(&block.header().to_bytes());
        assert_eq!(block.id(), fresh, "first (caching) read");
        assert_eq!(block.id(), fresh, "cached re-read");
        assert_eq!(block.header().id(), fresh, "header-direct hash");

        // Reconstruction from shared parts preserves the identity.
        let shared = Block::from_shared_parts(*block.header(), block.transactions_shared())
            .expect("intact parts");
        assert_eq!(shared.id(), fresh);
        let (header, body) = block.into_parts();
        assert_eq!(Block::new(header, body).id(), fresh, "rebuilt block");
    }
}

/// Store bodies are shared, not copied: `body_shared` aliases the block's
/// own body allocation, and the accessors agree with each other.
#[test]
fn store_bodies_are_shared_not_copied() {
    let mut rng = Xoshiro256::seed_from_u64(0xE4);
    let mut store = ChainStore::new();
    let genesis = GenesisConfig::default().genesis_block();
    store.append_block(&genesis).expect("genesis appends");
    let mut parent = *genesis.header();
    for height in 1..6u64 {
        let txs: Vec<Transaction> = (0..4).map(|_| arb_tx(&mut rng)).collect();
        let template = BlockHeader {
            height,
            parent: parent.id(),
            timestamp_ms: parent.timestamp_ms + 1,
            ..parent
        };
        let block = Block::new(template, txs);
        store.append_block(&block).expect("appends");
        parent = *block.header();

        let shared = store.body_shared(height).expect("body present");
        assert!(
            Arc::ptr_eq(&shared, &block.transactions_shared()),
            "height {height}: body was copied, not shared"
        );
        assert_eq!(store.body(height).expect("body"), block.transactions());
        let rebuilt = store.block(height).expect("block");
        assert_eq!(rebuilt.id(), block.id());
        assert!(Arc::ptr_eq(
            &rebuilt.transactions_shared(),
            &block.transactions_shared()
        ));
    }
}
