//! Randomized property tests over the ledger substrate.
//!
//! Ported from `proptest` to seeded, deterministic case loops over
//! [`ici_rng`]. Enable the `heavy-tests` feature for a deeper sweep.

use ici_chain::block::{Block, BlockHeader};
use ici_chain::codec::{CodecError, Decode, Encode, Reader, Writer};
use ici_chain::mempool::Mempool;
use ici_chain::state::WorldState;
use ici_chain::transaction::{Address, Transaction};
use ici_crypto::sha256::Digest;
use ici_crypto::sig::Keypair;
use ici_rng::Xoshiro256;

const CASES: usize = if cfg!(feature = "heavy-tests") {
    512
} else {
    64
};

fn arb_tx(rng: &mut Xoshiro256) -> Transaction {
    let sender = rng.gen_range(0u64..64);
    let recipient = rng.gen_range(0u64..64);
    let amount = rng.next_u64();
    let fee = rng.gen_range(0u64..1_000);
    let nonce = rng.gen_range(0u64..10);
    let payload = rng.gen_bytes_in(0usize..200);
    Transaction::signed(
        &Keypair::from_seed(sender),
        Address::from_seed(recipient),
        amount,
        fee,
        nonce,
        payload,
    )
}

/// Every transaction round-trips through the codec and keeps its id
/// and signature validity.
#[test]
fn tx_codec_round_trip() {
    let mut rng = Xoshiro256::seed_from_u64(0xB1);
    for _ in 0..CASES {
        let tx = arb_tx(&mut rng);
        let bytes = tx.to_bytes();
        assert_eq!(bytes.len(), tx.encoded_len());
        let decoded = Transaction::from_bytes(&bytes).expect("round trip");
        assert_eq!(decoded.id(), tx.id());
        assert!(decoded.verify_signature());
        assert_eq!(decoded, tx);
    }
}

/// Truncating an encoding anywhere fails cleanly, never panics.
#[test]
fn tx_truncation_fails_cleanly() {
    let mut rng = Xoshiro256::seed_from_u64(0xB2);
    for _ in 0..CASES {
        let tx = arb_tx(&mut rng);
        let bytes = tx.to_bytes();
        let cut = rng.gen_range(0usize..bytes.len());
        assert!(Transaction::from_bytes(&bytes[..cut]).is_err());
    }
}

/// Flipping any single byte of an encoded transaction either fails to
/// decode or fails signature verification or changes the id — it never
/// yields a different-but-valid transaction with the same id.
#[test]
fn tx_bitflip_never_silently_accepted() {
    let mut rng = Xoshiro256::seed_from_u64(0xB3);
    for _ in 0..CASES {
        let tx = arb_tx(&mut rng);
        let bytes = tx.to_bytes();
        let mut mutated = bytes.clone();
        let i = rng.gen_range(0usize..mutated.len());
        mutated[i] ^= 0x01;
        match Transaction::from_bytes(&mutated) {
            Err(_) => {}
            Ok(m) => {
                assert_ne!(m.id(), tx.id(), "same id after mutation at byte {i}");
            }
        }
    }
}

/// Blocks round-trip and re-validate their commitments on decode.
#[test]
fn block_codec_round_trip() {
    let mut rng = Xoshiro256::seed_from_u64(0xB4);
    for _ in 0..CASES / 2 {
        let tx_count = rng.gen_range(0usize..12);
        let txs: Vec<Transaction> = (0..tx_count).map(|_| arb_tx(&mut rng)).collect();
        let height = rng.gen_range(1u64..1000);
        let block = Block::new(
            BlockHeader {
                height,
                parent: Digest::ZERO,
                tx_root: Digest::ZERO,
                state_root: Digest::ZERO,
                timestamp_ms: height,
                proposer: 1,
                pow_nonce: 0,
                tx_count: 0,
                body_len: 0,
            },
            txs,
        );
        let bytes = block.to_bytes();
        assert_eq!(bytes.len(), block.encoded_len());
        let decoded = Block::from_bytes(&bytes).expect("round trip");
        assert_eq!(decoded.id(), block.id());
        assert_eq!(decoded, block);
    }
}

/// State execution conserves total supply for any applied transaction.
#[test]
fn supply_conservation() {
    let mut rng = Xoshiro256::seed_from_u64(0xB5);
    for _ in 0..CASES {
        let seed = rng.gen_range(0u64..32);
        let amount = rng.gen_range(0u64..1_000);
        let fee = rng.gen_range(0u64..100);
        let mut state = WorldState::with_balances([(Address::from_seed(seed), 10_000)]);
        let supply = state.total_supply();
        let tx = Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 1),
            amount,
            fee,
            0,
            Vec::new(),
        );
        let _ = state.apply(&tx, Address::from_seed(99));
        assert_eq!(state.total_supply(), supply);
    }
}

/// Mempool `take_for_block` always yields sender chains in nonce order
/// and never returns more than requested.
#[test]
fn mempool_serves_executable_batches() {
    let mut rng = Xoshiro256::seed_from_u64(0xB6);
    for _ in 0..CASES {
        let entry_count = rng.gen_range(1usize..40);
        let max = rng.gen_range(1usize..30);
        let mut pool = Mempool::new(1_000);
        for _ in 0..entry_count {
            let sender = rng.gen_range(0u64..8);
            let nonce = rng.gen_range(0u64..4);
            let fee = rng.gen_range(1u64..50);
            let _ = pool.insert(Transaction::signed(
                &Keypair::from_seed(sender),
                Address::from_seed(sender + 100),
                1,
                fee,
                nonce,
                Vec::new(),
            ));
        }
        let picked = pool.take_for_block(max);
        assert!(picked.len() <= max);
        // Per-sender nonces must be non-decreasing in pick order.
        let mut last: std::collections::HashMap<Address, u64> = std::collections::HashMap::new();
        for tx in &picked {
            if let Some(prev) = last.get(&tx.sender_address()) {
                assert!(tx.nonce() > *prev, "nonce order violated");
            }
            last.insert(tx.sender_address(), tx.nonce());
        }
    }
}

/// The primitive codec round-trips arbitrary sequences of fields.
#[test]
fn codec_field_round_trip() {
    let mut rng = Xoshiro256::seed_from_u64(0xB7);
    for _ in 0..CASES {
        let a = rng.gen_range(0u32..256) as u8;
        let b = rng.next_u32();
        let c = rng.next_u64();
        let blob = rng.gen_bytes_in(0usize..300);
        let mut w = Writer::new();
        a.encode(&mut w);
        b.encode(&mut w);
        c.encode(&mut w);
        w.put_len_prefixed(&blob);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).expect("u8"), a);
        assert_eq!(u32::decode(&mut r).expect("u32"), b);
        assert_eq!(u64::decode(&mut r).expect("u64"), c);
        assert_eq!(r.take_len_prefixed().expect("blob"), &blob[..]);
        assert_eq!(r.finish(), Ok(()));
    }
}

/// Arbitrary garbage never panics the decoder.
#[test]
fn decoder_tolerates_garbage() {
    let mut rng = Xoshiro256::seed_from_u64(0xB8);
    for _ in 0..CASES * 4 {
        let bytes = rng.gen_bytes_in(0usize..400);
        let _ = Transaction::from_bytes(&bytes);
        let _ = Block::from_bytes(&bytes);
        let _ = BlockHeader::from_bytes(&bytes);
        let mut r = Reader::new(&bytes);
        let _: Result<Vec<u64>, CodecError> = Vec::<u64>::decode(&mut r);
    }
}
