//! Property-based tests over the ledger substrate.

use ici_chain::block::{Block, BlockHeader};
use ici_chain::codec::{CodecError, Decode, Encode, Reader, Writer};
use ici_chain::mempool::Mempool;
use ici_chain::state::WorldState;
use ici_chain::transaction::{Address, Transaction};
use ici_crypto::sha256::Digest;
use ici_crypto::sig::Keypair;
use proptest::prelude::*;

fn arb_tx() -> impl Strategy<Value = Transaction> {
    (
        0u64..64,
        0u64..64,
        any::<u64>(),
        0u64..1_000,
        0u64..10,
        proptest::collection::vec(any::<u8>(), 0..200),
    )
        .prop_map(|(sender, recipient, amount, fee, nonce, payload)| {
            Transaction::signed(
                &Keypair::from_seed(sender),
                Address::from_seed(recipient),
                amount,
                fee,
                nonce,
                payload,
            )
        })
}

proptest! {
    /// Every transaction round-trips through the codec and keeps its id
    /// and signature validity.
    #[test]
    fn tx_codec_round_trip(tx in arb_tx()) {
        let bytes = tx.to_bytes();
        prop_assert_eq!(bytes.len(), tx.encoded_len());
        let decoded = Transaction::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(decoded.id(), tx.id());
        prop_assert!(decoded.verify_signature());
        prop_assert_eq!(decoded, tx);
    }

    /// Truncating an encoding anywhere fails cleanly, never panics.
    #[test]
    fn tx_truncation_fails_cleanly(tx in arb_tx(), cut in any::<prop::sample::Index>()) {
        let bytes = tx.to_bytes();
        let cut = cut.index(bytes.len());
        prop_assert!(Transaction::from_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping any single byte of an encoded transaction either fails to
    /// decode or fails signature verification or changes the id — it never
    /// yields a different-but-valid transaction with the same id.
    #[test]
    fn tx_bitflip_never_silently_accepted(tx in arb_tx(), pos in any::<prop::sample::Index>()) {
        let bytes = tx.to_bytes();
        let mut mutated = bytes.clone();
        let i = pos.index(mutated.len());
        mutated[i] ^= 0x01;
        match Transaction::from_bytes(&mutated) {
            Err(_) => {}
            Ok(m) => {
                prop_assert_ne!(m.id(), tx.id(), "same id after mutation at byte {}", i);
            }
        }
    }

    /// Blocks round-trip and re-validate their commitments on decode.
    #[test]
    fn block_codec_round_trip(txs in proptest::collection::vec(arb_tx(), 0..12), height in 1u64..1000) {
        let block = Block::new(
            BlockHeader {
                height,
                parent: Digest::ZERO,
                tx_root: Digest::ZERO,
                state_root: Digest::ZERO,
                timestamp_ms: height,
                proposer: 1,
                pow_nonce: 0,
                tx_count: 0,
                body_len: 0,
            },
            txs,
        );
        let bytes = block.to_bytes();
        prop_assert_eq!(bytes.len(), block.encoded_len());
        let decoded = Block::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(decoded.id(), block.id());
        prop_assert_eq!(decoded, block);
    }

    /// State execution conserves total supply for any applied transaction.
    #[test]
    fn supply_conservation(seed in 0u64..32, amount in 0u64..1_000, fee in 0u64..100) {
        let mut state = WorldState::with_balances([(Address::from_seed(seed), 10_000)]);
        let supply = state.total_supply();
        let tx = Transaction::signed(
            &Keypair::from_seed(seed),
            Address::from_seed(seed + 1),
            amount,
            fee,
            0,
            Vec::new(),
        );
        let _ = state.apply(&tx, Address::from_seed(99));
        prop_assert_eq!(state.total_supply(), supply);
    }

    /// Mempool `take_for_block` always yields sender chains in nonce order
    /// and never returns more than requested.
    #[test]
    fn mempool_serves_executable_batches(
        entries in proptest::collection::vec((0u64..8, 0u64..4, 1u64..50), 1..40),
        max in 1usize..30,
    ) {
        let mut pool = Mempool::new(1_000);
        for (sender, nonce, fee) in entries {
            let _ = pool.insert(Transaction::signed(
                &Keypair::from_seed(sender),
                Address::from_seed(sender + 100),
                1,
                fee,
                nonce,
                Vec::new(),
            ));
        }
        let picked = pool.take_for_block(max);
        prop_assert!(picked.len() <= max);
        // Per-sender nonces must be non-decreasing in pick order.
        let mut last: std::collections::HashMap<Address, u64> = std::collections::HashMap::new();
        for tx in &picked {
            if let Some(prev) = last.get(&tx.sender_address()) {
                prop_assert!(tx.nonce() > *prev, "nonce order violated");
            }
            last.insert(tx.sender_address(), tx.nonce());
        }
    }

    /// The primitive codec round-trips arbitrary sequences of fields.
    #[test]
    fn codec_field_round_trip(
        a in any::<u8>(),
        b in any::<u32>(),
        c in any::<u64>(),
        blob in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut w = Writer::new();
        a.encode(&mut w);
        b.encode(&mut w);
        c.encode(&mut w);
        w.put_len_prefixed(&blob);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        prop_assert_eq!(u8::decode(&mut r).expect("u8"), a);
        prop_assert_eq!(u32::decode(&mut r).expect("u32"), b);
        prop_assert_eq!(u64::decode(&mut r).expect("u64"), c);
        prop_assert_eq!(r.take_len_prefixed().expect("blob"), &blob[..]);
        prop_assert_eq!(r.finish(), Ok(()));
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn decoder_tolerates_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = Transaction::from_bytes(&bytes);
        let _ = Block::from_bytes(&bytes);
        let _ = BlockHeader::from_bytes(&bytes);
        let mut r = Reader::new(&bytes);
        let _: Result<Vec<u64>, CodecError> = Vec::<u64>::decode(&mut r);
    }
}
