//! Determinism suite for the sharded world state and mempool.
//!
//! The scale tier's contract is byte-identity: any physical shard count
//! × thread count must produce exactly the results of the sequential
//! single-shard reference — v1 flat roots, v2 bucket roots, block apply
//! outcomes (including the failure index and the partially-applied
//! state a mid-block error leaves behind), and mempool admission /
//! selection order. [`ReferenceMempool`] below is a verbatim copy of
//! the pre-index full-scan algorithm, kept as the oracle the
//! fee-ordered indexes are differentially pinned against.

use std::collections::BTreeMap;

use ici_chain::block::{Block, BlockHeader};
use ici_chain::codec::{Decode, Encode};
use ici_chain::mempool::{Mempool, MempoolError};
use ici_chain::state::{StateError, WorldState};
use ici_chain::transaction::{Address, Transaction, TxId};
use ici_crypto::sha256::Digest;
use ici_crypto::sig::Keypair;
use ici_rng::Xoshiro256;

/// Shard counts exercised everywhere: the sequential reference, the
/// e_scale CI matrix point, and the one-bucket-per-shard extreme.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 64];

const ACCOUNTS: u64 = 400;
const FUNDS: u64 = 1_000_000;

fn funded() -> Vec<(Address, u64)> {
    (0..ACCOUNTS)
        .map(|s| (Address::from_seed(s), FUNDS))
        .collect()
}

/// Deterministic nonce-correct transaction stream over the funded
/// universe. Nonces are tracked per sender so every tx is applicable in
/// emission order.
struct TxGen {
    rng: Xoshiro256,
    nonces: BTreeMap<u64, u64>,
}

impl TxGen {
    fn new(seed: u64) -> TxGen {
        TxGen {
            rng: Xoshiro256::seed_from_u64(seed),
            nonces: BTreeMap::new(),
        }
    }

    fn next(&mut self) -> Transaction {
        let sender = self.rng.gen_range(0u64..ACCOUNTS);
        let recipient = self.rng.gen_range(0u64..ACCOUNTS);
        let nonce = self.nonces.entry(sender).or_insert(0);
        let tx = Transaction::signed(
            &Keypair::from_seed(sender),
            Address::from_seed(recipient),
            self.rng.gen_range(1u64..50),
            self.rng.gen_range(1u64..20),
            *nonce,
            self.rng.gen_bytes_in(0usize..64),
        );
        *nonce += 1;
        tx
    }
}

/// Blocks big enough (96 txs) to cross the `PAR_SIG_MIN_TXS` threshold,
/// so the parallel signature fan-out actually runs when threads > 1.
fn block_at(height: u64, txs: Vec<Transaction>) -> Block {
    Block::new(
        BlockHeader {
            height,
            parent: Digest::ZERO,
            tx_root: Digest::ZERO,
            state_root: Digest::ZERO,
            timestamp_ms: height,
            proposer: 1,
            pow_nonce: 0,
            tx_count: 0,
            body_len: 0,
        },
        txs,
    )
}

/// Re-encodes `tx` with one payload byte flipped: still decodes, but
/// signature verification fails — the mid-block failure injector.
fn corrupt_payload(tx: &Transaction) -> Transaction {
    let mut bytes = tx.to_bytes();
    let i = bytes.len() - 1; // payload is encoded last
    bytes[i] ^= 0x01;
    let mutated = Transaction::from_bytes(&bytes).expect("still decodes");
    assert!(!mutated.verify_signature(), "corruption must break the sig");
    mutated
}

/// Sharded states at every shard × thread combination replay the same
/// blocks to identical v1 roots, v2 roots, and account contents.
#[test]
fn sharded_replay_is_byte_identical_across_matrix() {
    let mut gen = TxGen::new(0x5D01);
    let blocks: Vec<Block> = (1..=6u64)
        .map(|h| block_at(h, (0..96).map(|_| gen.next()).collect()))
        .collect();

    // Sequential reference: one shard, one thread.
    ici_par::set_threads(1);
    let mut reference = WorldState::with_balances_sharded(funded(), 1);
    for block in &blocks {
        reference.apply_block(block).expect("reference applies");
    }
    let v1 = reference.root();
    let v2 = reference.sharded_root();

    for threads in [1usize, 4] {
        ici_par::set_threads(threads);
        for shards in SHARD_COUNTS {
            let mut state = WorldState::with_balances_sharded(funded(), shards);
            assert_eq!(state.shard_count(), shards);
            for block in &blocks {
                state
                    .apply_block(block)
                    .unwrap_or_else(|(i, e)| panic!("s={shards} t={threads} tx {i}: {e}"));
            }
            assert_eq!(state.root(), v1, "v1 root s={shards} t={threads}");
            assert_eq!(state.sharded_root(), v2, "v2 root s={shards} t={threads}");
            assert_eq!(state, reference, "contents s={shards} t={threads}");
        }
    }
    ici_par::set_threads(1);
}

/// A mid-block signature failure reports the same index and leaves the
/// same partially-applied state at every shard × thread combination.
#[test]
fn mid_block_failure_is_deterministic_across_matrix() {
    let mut gen = TxGen::new(0x5D02);
    let mut txs: Vec<Transaction> = (0..96).map(|_| gen.next()).collect();
    let bad_index = 70; // past the parallel-verify threshold
    txs[bad_index] = corrupt_payload(&txs[bad_index]);
    let block = block_at(1, txs);

    ici_par::set_threads(1);
    let mut reference = WorldState::with_balances_sharded(funded(), 1);
    let err = reference.apply_block(&block).expect_err("must fail");
    assert_eq!(err, (bad_index, StateError::BadSignature));

    for threads in [1usize, 4] {
        ici_par::set_threads(threads);
        for shards in SHARD_COUNTS {
            let mut state = WorldState::with_balances_sharded(funded(), shards);
            let got = state.apply_block(&block).expect_err("must fail");
            assert_eq!(got, err, "failure index s={shards} t={threads}");
            assert_eq!(state, reference, "partial state s={shards} t={threads}");
            assert_eq!(state.root(), reference.root());
        }
    }
    ici_par::set_threads(1);
}

// ---------------------------------------------------------------------------
// Mempool differential: indexed pool vs the pre-index full-scan oracle.
// ---------------------------------------------------------------------------

struct RefEntry {
    tx: Transaction,
    id: TxId,
}

/// Verbatim port of the pre-index mempool: every admission decision and
/// pick comes from a full scan over `by_sender`. Slow, but the exact
/// behaviour the indexed pool must reproduce byte-for-byte.
struct ReferenceMempool {
    by_sender: BTreeMap<Address, BTreeMap<u64, RefEntry>>,
    ids: std::collections::HashSet<TxId>,
    capacity: usize,
    len: usize,
}

impl ReferenceMempool {
    fn new(capacity: usize) -> ReferenceMempool {
        ReferenceMempool {
            by_sender: BTreeMap::new(),
            ids: std::collections::HashSet::new(),
            capacity,
            len: 0,
        }
    }

    fn cheapest(&self) -> Option<(u64, Address, u64)> {
        self.by_sender
            .iter()
            .flat_map(|(sender, chain)| {
                chain
                    .iter()
                    .map(move |(nonce, e)| (e.tx.fee(), *sender, *nonce))
            })
            .min()
    }

    fn insert(&mut self, tx: Transaction) -> Result<(), MempoolError> {
        if !tx.verify_signature() {
            return Err(MempoolError::BadSignature);
        }
        let id = tx.id();
        if self.ids.contains(&id) {
            return Err(MempoolError::Duplicate(id));
        }
        let sender = tx.sender_address();
        if let Some(existing) = self
            .by_sender
            .get(&sender)
            .and_then(|chain| chain.get(&tx.nonce()))
        {
            if existing.tx.fee() >= tx.fee() {
                return Err(MempoolError::Underpriced {
                    incumbent_fee: existing.tx.fee(),
                });
            }
            if let Some(old) = self
                .by_sender
                .get_mut(&sender)
                .and_then(|chain| chain.remove(&tx.nonce()))
            {
                self.ids.remove(&old.id);
                self.len -= 1;
            }
        }
        if self.len >= self.capacity {
            match self.cheapest() {
                Some((fee, victim_sender, victim_nonce)) if tx.fee() > fee => {
                    if let Some(old) = self
                        .by_sender
                        .get_mut(&victim_sender)
                        .and_then(|chain| chain.remove(&victim_nonce))
                    {
                        self.ids.remove(&old.id);
                        self.len -= 1;
                    }
                    if self
                        .by_sender
                        .get(&victim_sender)
                        .is_some_and(|chain| chain.is_empty())
                    {
                        self.by_sender.remove(&victim_sender);
                    }
                }
                _ => return Err(MempoolError::PoolFull),
            }
        }
        self.ids.insert(id);
        self.by_sender
            .entry(sender)
            .or_default()
            .insert(tx.nonce(), RefEntry { tx, id });
        self.len += 1;
        Ok(())
    }

    fn take_for_block(&mut self, max: usize) -> Vec<Transaction> {
        let mut picked = Vec::with_capacity(max.min(self.len));
        while picked.len() < max {
            let best = self
                .by_sender
                .iter()
                .filter_map(|(sender, chain)| {
                    chain
                        .iter()
                        .next()
                        .map(|(nonce, e)| (e.tx.fee(), *sender, *nonce))
                })
                .max();
            let Some((_, sender, nonce)) = best else {
                break;
            };
            let Some(entry) = self
                .by_sender
                .get_mut(&sender)
                .and_then(|chain| chain.remove(&nonce))
            else {
                break;
            };
            self.ids.remove(&entry.id);
            self.len -= 1;
            if self
                .by_sender
                .get(&sender)
                .is_some_and(|chain| chain.is_empty())
            {
                self.by_sender.remove(&sender);
            }
            picked.push(entry.tx);
        }
        picked
    }

    fn prune_below(&mut self, sender: &Address, next_nonce: u64) -> usize {
        let Some(chain) = self.by_sender.get_mut(sender) else {
            return 0;
        };
        let stale: Vec<u64> = chain.range(..next_nonce).map(|(n, _)| *n).collect();
        for nonce in &stale {
            if let Some(e) = chain.remove(nonce) {
                self.ids.remove(&e.id);
                self.len -= 1;
            }
        }
        if chain.is_empty() {
            self.by_sender.remove(sender);
        }
        stale.len()
    }

    fn contents(&self) -> Vec<Transaction> {
        self.by_sender
            .values()
            .flat_map(|chain| chain.values().map(|e| e.tx.clone()))
            .collect()
    }
}

/// The indexed pool (at every shard count) is operation-for-operation
/// identical to the full-scan oracle under random churn: same admission
/// verdicts, same eviction victims, same pick order, same survivors.
#[test]
fn indexed_pool_matches_full_scan_oracle_under_churn() {
    for shards in SHARD_COUNTS {
        let mut rng = Xoshiro256::seed_from_u64(0x5D03);
        let mut oracle = ReferenceMempool::new(48);
        let mut pool = Mempool::with_shards(48, shards);
        assert_eq!(pool.shard_count(), shards);

        for step in 0..600 {
            match rng.gen_range(0u32..10) {
                // Mostly inserts: duplicate fees + nonce collisions make
                // replace-by-fee, ties, and eviction all fire.
                0..=6 => {
                    let sender = rng.gen_range(0u64..24);
                    let nonce = rng.gen_range(0u64..6);
                    let fee = rng.gen_range(1u64..12);
                    let tx = Transaction::signed(
                        &Keypair::from_seed(sender),
                        Address::from_seed(sender + 500),
                        1,
                        fee,
                        nonce,
                        Vec::new(),
                    );
                    let want = oracle.insert(tx.clone());
                    let got = pool.insert(tx);
                    assert_eq!(got, want, "shards={shards} step={step} insert");
                }
                7..=8 => {
                    let max = rng.gen_range(1usize..16);
                    let want = oracle.take_for_block(max);
                    let got = pool.take_for_block(max);
                    assert_eq!(got, want, "shards={shards} step={step} take");
                }
                _ => {
                    let sender = Address::from_seed(rng.gen_range(0u64..24));
                    let next = rng.gen_range(0u64..7);
                    let want = oracle.prune_below(&sender, next);
                    let got = pool.prune_below(&sender, next);
                    assert_eq!(got, want, "shards={shards} step={step} prune");
                }
            }
            assert_eq!(pool.len(), oracle.len, "shards={shards} step={step} len");
        }
        let drained: Vec<Transaction> = pool.iter().cloned().collect();
        assert_eq!(drained, oracle.contents(), "shards={shards} survivors");
    }
}

/// `fee_floor` always equals the oracle's full-scan cheapest fee.
#[test]
fn fee_floor_matches_full_scan_minimum() {
    let mut rng = Xoshiro256::seed_from_u64(0x5D04);
    let mut oracle = ReferenceMempool::new(64);
    let mut pool = Mempool::with_shards(64, 4);
    for _ in 0..200 {
        let sender = rng.gen_range(0u64..16);
        let nonce = rng.gen_range(0u64..8);
        let fee = rng.gen_range(1u64..30);
        let tx = Transaction::signed(
            &Keypair::from_seed(sender),
            Address::from_seed(sender + 500),
            1,
            fee,
            nonce,
            Vec::new(),
        );
        let _ = oracle.insert(tx.clone());
        let _ = pool.insert(tx);
        assert_eq!(pool.fee_floor(), oracle.cheapest().map(|(fee, _, _)| fee));
    }
}
