//! Shared scaffolding for the experiment binaries (`src/bin/e*.rs`).
//!
//! Every binary regenerates one table/figure of the paper's evaluation
//! (see `DESIGN.md` for the per-experiment index). Two scales are
//! supported:
//!
//! * **small** (default) — laptop-friendly populations that preserve the
//!   parameter *ratios* the paper's claims depend on (notably
//!   `shards · r / cluster_size = 0.25`);
//! * **paper** (`--paper` flag) — the abstract's scale (thousands of
//!   nodes, RapidChain committees of 250). Slower; same code path.
//!
//! Results print as ASCII tables and are archived as JSON under
//! `results/`.

// `deny` (not `forbid`) so the `alloc` module can carve out the one
// `GlobalAlloc` impl the counting allocator needs; see lint.toml
// `unsafe_files`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod harness;

use std::path::PathBuf;

use ici_net::link::LinkModel;
use ici_sim::report::ExperimentRecord;
use ici_sim::table::Table;
use ici_workload::{PayloadSize, WorkloadConfig};

/// Experiment scale selected on the command line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly populations (default).
    Small,
    /// The abstract's populations (`--paper`).
    Paper,
}

impl Scale {
    /// Parses the process arguments: `--paper` selects [`Scale::Paper`].
    ///
    /// Also initializes telemetry (`ICI_TELEMETRY=1`) and causal tracing
    /// (`ICI_TRACE=1`) from the environment, since every experiment
    /// binary calls this exactly once at startup.
    pub fn from_args() -> Scale {
        ici_telemetry::init_from_env();
        ici_trace::init_from_env();
        if std::env::args().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Small
        }
    }
}

/// Network sizes for a strategy-comparison sweep.
pub fn network_sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![128, 256, 512],
        Scale::Paper => vec![1_000, 2_000, 4_000],
    }
}

/// ICI cluster size at each scale (64 in the paper regime).
pub fn cluster_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 16,
        Scale::Paper => 64,
    }
}

/// RapidChain committee size at each scale (250 in the paper regime).
///
/// Chosen so that at the top of the sweep `shards · r / c = 0.25` with
/// `r = 1` — the abstract's headline point.
pub fn committee_size(scale: Scale) -> usize {
    match scale {
        Scale::Small => 128,
        Scale::Paper => 250,
    }
}

/// The standard experiment workload: 256 funded accounts, Zipf senders,
/// 200-byte payloads.
pub fn standard_workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        accounts: 256,
        senders: ici_workload::SenderDistribution::Zipf { exponent: 1.0 },
        payload: PayloadSize::Fixed(200),
        amount: 1,
        fee: 1,
        fee_jitter: 0,
        seed,
    }
}

/// Jitter-free link model so experiment tables are exactly reproducible.
pub fn quiet_link() -> LinkModel {
    LinkModel {
        max_jitter_ms: 0.0,
        ..LinkModel::default()
    }
}

/// Blocks per run at each scale.
pub fn block_count(scale: Scale) -> usize {
    match scale {
        Scale::Small => 20,
        Scale::Paper => 40,
    }
}

/// Transactions per block at each scale.
pub fn txs_per_block(scale: Scale) -> usize {
    match scale {
        Scale::Small => 40,
        Scale::Paper => 100,
    }
}

/// Prints tables and archives the experiment record under `results/`.
///
/// When telemetry is enabled (`ICI_TELEMETRY=1`) the record gains a
/// `telemetry` section with the run's counters, histograms, and spans,
/// plus the per-round `series` the runners sampled, and a top-spans
/// profile plus a flame graph over the span-event ring are printed
/// after the tables.
///
/// When tracing is enabled (`ICI_TRACE=1`) the run's causal event log
/// is additionally exported next to the record as
/// `TRACE_<id>.json` (canonical event log) and
/// `TRACE_<id>.chrome.json` (Chrome trace-event / Perfetto format),
/// under `ICI_TRACE_OUT` (default `results/`).
pub fn emit(id: &str, title: &str, params: &str, tables: &[&Table]) {
    for table in tables {
        println!("{table}");
    }
    let record = ExperimentRecord::new(id, title, params, tables)
        .with_telemetry()
        .with_series();
    if let Some(snapshot) = &record.telemetry {
        print_top_spans(snapshot, 5);
        println!("{}", ici_telemetry::render_flamegraph(snapshot, 40));
    }
    let path = PathBuf::from("results").join(format!("{}.json", id.to_lowercase()));
    match record.write_json(&path) {
        Ok(()) => println!("[saved {}]\n", path.display()),
        Err(e) => eprintln!("[warn: could not save {}: {e}]", path.display()),
    }
    export_trace(id);
    alloc::report(id);
}

/// Writes the trace collected so far to `ICI_TRACE_OUT` when tracing is
/// enabled; a no-op otherwise. Resets the collector afterwards so a
/// multi-experiment process never bleeds events across `emit` calls.
fn export_trace(id: &str) {
    if !ici_trace::enabled() {
        return;
    }
    let snap = ici_trace::snapshot();
    ici_trace::reset();
    let dir = PathBuf::from(ici_trace::out_dir());
    let lower = id.to_lowercase();
    for (suffix, body) in [
        (".json", ici_trace::export::canonical_json(id, &snap)),
        (".chrome.json", ici_trace::export::chrome_json(&snap)),
    ] {
        let path = dir.join(format!("TRACE_{lower}{suffix}"));
        let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body));
        match write {
            Ok(()) => println!(
                "[saved {} ({} events, {} dropped)]",
                path.display(),
                snap.events.len(),
                snap.dropped
            ),
            Err(e) => eprintln!("[warn: could not save {}: {e}]", path.display()),
        }
    }
}

/// Prints the `n` spans with the largest self time, one line each.
pub fn print_top_spans(snapshot: &ici_telemetry::TelemetrySnapshot, n: usize) {
    let top = snapshot.top_spans_by_self_time(n);
    if top.is_empty() {
        return;
    }
    println!("top {} spans by self time:", top.len());
    for s in top {
        let label = if s.label.is_empty() {
            String::new()
        } else {
            format!(" [{}]", s.label)
        };
        println!(
            "  {:<28}{} count={:<6} self={:>10} total={:>10}",
            s.name,
            label,
            s.count,
            harness::fmt_ns(s.self_ns as u128),
            harness::fmt_ns(s.total_ns as u128),
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_invariant_holds_at_both_scales() {
        for scale in [Scale::Small, Scale::Paper] {
            let n = *network_sizes(scale).last().expect("non-empty");
            let shards = n.div_ceil(committee_size(scale));
            let ratio = shards as f64 / cluster_size(scale) as f64; // r = 1
            assert!(
                (ratio - 0.25).abs() < 0.01,
                "{scale:?}: k={shards}, c={}, ratio {ratio}",
                cluster_size(scale)
            );
        }
    }

    #[test]
    fn scale_parsing_defaults_small() {
        // No --paper in the test harness args.
        assert_eq!(Scale::from_args(), Scale::Small);
    }

    #[test]
    fn workload_is_funded_and_deterministic() {
        let w = standard_workload(1);
        assert_eq!(w.accounts, 256);
        assert_eq!(standard_workload(1), standard_workload(1));
    }
}
