//! **E8 / Fig. clustering — latency-aware clustering vs random partition.**
//!
//! The strategy is "via clustering": on a regionally clumped WAN,
//! balanced k-means clusters have far smaller intra-cluster RTTs than a
//! random partition, which directly shrinks the intra-cluster PBFT round
//! and therefore block commit latency. This experiment reports cluster
//! quality (mean intra-cluster distance, diameter) and the measured ICI
//! commit latency under each clustering algorithm.
//!
//! Run: `cargo run --release -p ici-bench --bin e8_clustering [--paper]`

use ici_bench::{cluster_size, emit, quiet_link, standard_workload, Scale};
use ici_cluster::kmeans::{balanced_kmeans, kmeans, random_partition, KMeansConfig};
use ici_cluster::partition::Partition;
use ici_core::config::{Clustering, IciConfig};
use ici_net::topology::{Placement, Topology};
use ici_sim::runner::run_ici;
use ici_sim::table::Table;

fn quality(partition: &Partition, topology: &Topology) -> (f64, f64) {
    let mean = partition.mean_intra_cluster_distance(topology);
    let max_diameter = partition
        .cluster_diameters(topology)
        .into_iter()
        .fold(0.0f64, f64::max);
    (mean, max_diameter)
}

fn main() {
    let scale = Scale::from_args();
    let n: usize = match scale {
        Scale::Small => 256,
        Scale::Paper => 1_024,
    };
    let c = cluster_size(scale);
    let k = n.div_ceil(c);
    let blocks = 12;
    let txs = 30;

    // Cluster-quality table on the same regional topology the runs use.
    let topology = Topology::generate(n, &Placement::default(), 25);
    let mut quality_table = Table::new(
        format!("E8 (quality): clustering on a regional WAN, N={n}, k={k}"),
        [
            "algorithm",
            "mean intra-cluster dist (ms)",
            "max cluster diameter (ms)",
            "size imbalance",
        ],
    );
    for (name, partition) in [
        ("random", random_partition(n, k, 25)),
        ("k-means", kmeans(&topology, &KMeansConfig::with_k(k, 25))),
        (
            "balanced k-means",
            balanced_kmeans(&topology, &KMeansConfig::with_k(k, 25)),
        ),
    ] {
        let (mean, diameter) = quality(&partition, &topology);
        quality_table.row([
            name.to_string(),
            format!("{mean:.2}"),
            format!("{diameter:.2}"),
            partition.imbalance().to_string(),
        ]);
    }

    // End-to-end effect: commit latency under each clustering.
    let mut latency_table = Table::new(
        format!("E8 (measured): ICI commit latency by clustering, {blocks} blocks"),
        [
            "clustering",
            "home-cluster p50 (ms)",
            "network p50 (ms)",
            "network p95 (ms)",
        ],
    );
    for (name, algorithm) in [
        ("random", Clustering::Random),
        ("k-means", Clustering::KMeans),
        ("balanced k-means", Clustering::BalancedKMeans),
    ] {
        let (network, summary) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(2)
                .clustering(algorithm)
                .link(quiet_link())
                .seed(25)
                .build()
                .expect("valid configuration"),
            blocks,
            txs,
            standard_workload(25),
        );
        let mut home: Vec<f64> = network
            .commit_log()
            .iter()
            .map(|r| r.home_latency().as_millis_f64())
            .collect();
        home.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let home_p50 = home.get(home.len() / 2).copied().unwrap_or(0.0);
        latency_table.row([
            name.to_string(),
            format!("{home_p50:.2}"),
            format!("{:.2}", summary.commit_latency.p50_ms),
            format!("{:.2}", summary.commit_latency.p95_ms),
        ]);
    }

    emit(
        "E8",
        "Clustering quality and its effect on commit latency",
        &format!("scale={scale:?}, N={n}, c={c}, k={k}, blocks={blocks}, txs/block={txs}"),
        &[&quality_table, &latency_table],
    );
}
