//! **E3 / Fig. communication — traffic per committed block vs network
//! size.**
//!
//! "Reduce communication overhead by collaboratively storing and verifying
//! blocks": under ICIStrategy only `r` members per cluster receive a body;
//! the rest receive headers and exchange small votes. The figure data
//! compares mean bytes and messages per committed block across strategies
//! and breaks ICI's traffic down by message class.
//!
//! Run: `cargo run --release -p ici-bench --bin e3_communication [--paper]`

use ici_baselines::full::FullConfig;
use ici_baselines::rapidchain::RapidChainConfig;
use ici_bench::{
    block_count, cluster_size, committee_size, emit, network_sizes, quiet_link, standard_workload,
    txs_per_block, Scale,
};
use ici_core::config::IciConfig;
use ici_net::metrics::MessageKind;
use ici_sim::runner::{run_full, run_ici, run_rapidchain};
use ici_sim::table::{fmt_f64, Table};
use ici_storage::stats::format_bytes;

fn main() {
    let scale = Scale::from_args();
    let blocks = block_count(scale);
    let txs = txs_per_block(scale);
    let c = cluster_size(scale);
    let m = committee_size(scale);

    let mut per_block = Table::new(
        format!("E3: communication per committed block, {txs} txs/block"),
        ["N", "strategy", "bytes/block", "msgs/block", "bytes/tx"],
    );
    let mut breakdown = Table::new(
        "E3 (breakdown): ICI traffic by message class (whole run)",
        ["N", "class", "messages", "bytes", "share"],
    );

    for n in network_sizes(scale) {
        let workload = standard_workload(3);

        let (_, full) = run_full(
            FullConfig {
                nodes: n,
                link: quiet_link(),
                seed: 3,
                ..FullConfig::default()
            },
            blocks,
            txs,
            workload,
        );
        let shards = n.div_ceil(m);
        let (_, rapid) = run_rapidchain(
            RapidChainConfig {
                nodes: n,
                committee_size: m,
                link: quiet_link(),
                seed: 3,
                ..RapidChainConfig::default()
            },
            (blocks / shards).max(1),
            txs,
            workload,
        );
        let (ici_net, ici) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(2)
                .link(quiet_link())
                .seed(3)
                .build()
                .expect("valid configuration"),
            blocks,
            txs,
            workload,
        );

        for summary in [&full, &rapid, &ici] {
            let per_tx = if summary.total_txs > 0 {
                summary.mean_block_bytes * summary.committed_blocks as f64
                    / summary.total_txs as f64
            } else {
                0.0
            };
            per_block.row([
                n.to_string(),
                summary.strategy.clone(),
                format_bytes(summary.mean_block_bytes as u64),
                fmt_f64(summary.mean_block_messages),
                format_bytes(per_tx as u64),
            ]);
        }

        let meter = ici_net.net().meter();
        let total = meter.total().bytes.max(1);
        for kind in MessageKind::ALL {
            let counter = meter.kind(kind);
            if counter.messages == 0 {
                continue;
            }
            breakdown.row([
                n.to_string(),
                kind.to_string(),
                counter.messages.to_string(),
                format_bytes(counter.bytes),
                format!("{:.1}%", 100.0 * counter.bytes as f64 / total as f64),
            ]);
        }
    }

    emit(
        "E3",
        "Communication overhead per block",
        &format!("scale={scale:?}, c={c}, committee={m}, blocks={blocks}, txs/block={txs}"),
        &[&per_block, &breakdown],
    );
}
