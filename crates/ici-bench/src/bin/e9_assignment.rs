//! **E9 (ablation) — block→owner assignment strategies.**
//!
//! `DESIGN.md` calls out the assignment as a design choice: rendezvous
//! hashing (default) vs a consistent-hash ring vs round-robin striping.
//! This ablation quantifies the trade-off on three axes:
//!
//! * **balance** — how evenly a chain's bodies spread over members;
//! * **churn disruption** — the fraction of blocks whose owner set gains a
//!   new node when one member leaves (optimal is `r/c`);
//! * **migration cost** — bytes a live network moves when one node joins
//!   (measured end-to-end through the bootstrap protocol).
//!
//! Run: `cargo run --release -p ici-bench --bin e9_assignment [--paper]`

use ici_bench::{emit, quiet_link, standard_workload, Scale};
use ici_cluster::membership::JoinPolicy;
use ici_core::config::{Assignment, IciConfig};
use ici_crypto::sha256::{Digest, Sha256};
use ici_net::node::NodeId;
use ici_net::topology::Coord;
use ici_sim::runner::run_ici;
use ici_sim::table::Table;
use ici_storage::assignment::{
    churn_disruption, ownership_histogram, AssignmentStrategy, RendezvousAssignment,
    RingAssignment, RoundRobinAssignment,
};
use ici_storage::stats::format_bytes;

fn strategies() -> Vec<(&'static str, Box<dyn AssignmentStrategy>, Assignment)> {
    vec![
        (
            "rendezvous",
            Box::new(RendezvousAssignment),
            Assignment::Rendezvous,
        ),
        (
            "consistent-ring",
            Box::new(RingAssignment::default()),
            Assignment::Ring,
        ),
        (
            "round-robin",
            Box::new(RoundRobinAssignment),
            Assignment::RoundRobin,
        ),
    ]
}

fn main() {
    let scale = Scale::from_args();
    let c = match scale {
        Scale::Small => 16usize,
        Scale::Paper => 64,
    };
    let r = 2usize;
    let chain_blocks = 2_000u64;

    // Axis 1 & 2: pure assignment properties over a synthetic chain.
    let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
    let block_ids: Vec<(Digest, u64)> = (0..chain_blocks)
        .map(|h| (Sha256::digest(&h.to_be_bytes()), h))
        .collect();

    let mut properties = Table::new(
        format!("E9: assignment properties, c={c}, r={r}, {chain_blocks} blocks"),
        [
            "strategy",
            "min owned",
            "max owned",
            "max/ideal",
            "churn disruption",
            "optimal disruption",
        ],
    );
    let ideal = chain_blocks as f64 * r as f64 / c as f64;
    for (name, strategy, _) in strategies() {
        let hist = ownership_histogram(strategy.as_ref(), &block_ids, &members, r);
        let min = hist.values().min().copied().unwrap_or(0);
        let max = hist.values().max().copied().unwrap_or(0);
        let disruption = churn_disruption(
            strategy.as_ref(),
            &block_ids,
            &members,
            NodeId::new(c as u64 / 2),
            r,
        );
        properties.row([
            name.to_string(),
            min.to_string(),
            max.to_string(),
            format!("{:.2}", max as f64 / ideal),
            format!("{disruption:.3}"),
            format!("{:.3}", r as f64 / c as f64),
        ]);
    }

    // Axis 3: end-to-end join cost on a live network under each strategy.
    let mut migration = Table::new(
        "E9 (measured): one join on a live network (N=128, 30 blocks)",
        [
            "strategy",
            "joiner downloaded",
            "replicas pruned",
            "join duration (ms)",
        ],
    );
    for (name, _, assignment) in strategies() {
        let (mut network, _) = run_ici(
            IciConfig::builder()
                .nodes(128)
                .cluster_size(c)
                .replication(r)
                .assignment(assignment)
                .link(quiet_link())
                .seed(33)
                .build()
                .expect("valid configuration"),
            30,
            30,
            standard_workload(33),
        );
        let report = network
            .bootstrap_node(Coord::new(50.0, 50.0), JoinPolicy::NearestCentroid)
            .expect("join succeeds");
        migration.row([
            name.to_string(),
            format_bytes(report.total_bytes()),
            report.pruned_bodies.to_string(),
            format!("{:.1}", report.duration.as_millis_f64()),
        ]);
    }

    emit(
        "E9",
        "Ablation: block-to-owner assignment strategies",
        &format!("scale={scale:?}, c={c}, r={r}, chain={chain_blocks} synthetic blocks"),
        &[&properties, &migration],
    );
}
