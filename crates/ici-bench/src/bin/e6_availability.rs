//! **E6 / Fig. availability — chain availability under node failures.**
//!
//! Spreading bodies over `r` of `c` members trades storage for failure
//! slack. This experiment crashes a random fraction of all nodes and
//! audits every cluster: what fraction of heights is still served by at
//! least one live in-cluster owner, per replication factor — then runs
//! the re-replication protocol and reports the repaired availability and
//! the repair traffic it cost.
//!
//! Run: `cargo run --release -p ici-bench --bin e6_availability [--paper]`

use ici_bench::{cluster_size, emit, quiet_link, standard_workload, Scale};
use ici_core::config::IciConfig;
use ici_net::metrics::MessageKind;
use ici_net::node::NodeId;
use ici_sim::runner::run_ici;
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

/// Deterministic pseudo-random crash set: `count` distinct nodes of `n`.
fn crash_set(n: usize, count: usize, seed: u64) -> Vec<NodeId> {
    let mut picked = Vec::new();
    let mut state = seed | 1;
    let mut seen = std::collections::HashSet::new();
    while picked.len() < count && seen.len() < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let idx = ((state >> 33) as usize) % n;
        if seen.insert(idx) {
            picked.push(NodeId::new(idx as u64));
        }
    }
    picked
}

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Small => 192,
        Scale::Paper => 1_024,
    };
    let c = cluster_size(scale);
    let blocks = 25;
    let txs = 30;

    let fractions = [0.05f64, 0.10, 0.20, 0.30, 0.40, 0.50];
    let mut table = Table::new(
        format!("E6: availability under random crashes, N={n}, c={c}, {blocks} blocks"),
        [
            "r",
            "failed %",
            "min cluster avail",
            "mean cluster avail",
            "after repair",
            "repair bytes",
            "cross-cluster fetches",
            "lost heights",
        ],
    );

    for r in [1usize, 2, 3] {
        for &frac in &fractions {
            let (mut network, _) = run_ici(
                IciConfig::builder()
                    .nodes(n)
                    .cluster_size(c)
                    .replication(r)
                    .link(quiet_link())
                    .seed(21)
                    .build()
                    .expect("valid configuration"),
                blocks,
                txs,
                standard_workload(21),
            );

            let crashed = crash_set(n, (n as f64 * frac) as usize, 77 + r as u64);
            for node in &crashed {
                network.crash_node(*node).expect("known node");
            }

            let reports = network.audit_all();
            let min_avail = reports
                .iter()
                .map(|rep| rep.availability())
                .fold(f64::INFINITY, f64::min);
            let mean_avail =
                reports.iter().map(|rep| rep.availability()).sum::<f64>() / reports.len() as f64;

            let repair_before = network.net().meter().kind(MessageKind::Repair).bytes;
            let repair_reports = network.repair_all();
            let repair_bytes =
                network.net().meter().kind(MessageKind::Repair).bytes - repair_before;
            let fetched: usize = repair_reports
                .iter()
                .map(|rep| rep.cross_cluster_fetches.len())
                .sum();
            let lost: usize = repair_reports
                .iter()
                .map(|rep| rep.unrecoverable.len())
                .sum();

            let after = network.audit_all();
            let min_after = after
                .iter()
                .map(|rep| rep.availability())
                .fold(f64::INFINITY, f64::min);

            table.row([
                r.to_string(),
                format!("{:.0}%", frac * 100.0),
                format!("{min_avail:.4}"),
                format!("{mean_avail:.4}"),
                format!("{min_after:.4}"),
                format_bytes(repair_bytes),
                fetched.to_string(),
                lost.to_string(),
            ]);
        }
    }

    emit(
        "E6",
        "Availability and recovery under node failures",
        &format!("scale={scale:?}, N={n}, c={c}, blocks={blocks}, txs/block={txs}"),
        &[&table],
    );
}
