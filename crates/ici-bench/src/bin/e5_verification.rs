//! **E5 / Fig. verification — collaborative vs solo block verification.**
//!
//! "Collaboratively storing and verifying blocks": a cluster of `c`
//! members splits signature checking `c` ways; each member verifies a
//! `1/c` slice and the quorum vote certifies the whole block. This
//! experiment reports (a) the per-member CPU cost curves from the cost
//! model and (b) the *measured* intra-cluster commit latency of a PBFT
//! round under solo vs collaborative validation, as transactions per
//! block grow.
//!
//! Run: `cargo run --release -p ici-bench --bin e5_verification [--paper]`

use ici_bench::{cluster_size, emit, quiet_link, Scale};
use ici_consensus::pbft::{run_pbft_commit, PbftInputs};
use ici_net::cost::CostModel;
use ici_net::metrics::MessageKind;
use ici_net::network::Network;
use ici_net::node::NodeId;
use ici_net::time::SimTime;
use ici_net::topology::{Placement, Topology};
use ici_sim::table::Table;

fn commit_latency_ms(
    c: usize,
    n_txs: usize,
    body_bytes: u64,
    collaborative: bool,
    cost: &CostModel,
) -> f64 {
    let topo = Topology::generate(c, &Placement::default(), 5);
    let mut net = Network::new(topo, quiet_link());
    let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
    let header = 136u64;
    let report = run_pbft_commit(
        &mut net,
        PbftInputs {
            members: &members,
            leader: NodeId::new(0),
            start: SimTime::ZERO,
            payload: |_| (MessageKind::BlockFull, header + body_bytes),
            validation: |_| {
                if collaborative {
                    cost.collaborative_member_validation(n_txs, body_bytes, c)
                } else {
                    cost.solo_block_validation(n_txs, body_bytes)
                }
            },
        },
    );
    report
        .quorum_commit()
        .map(|t| t.as_micros() as f64 / 1_000.0)
        .unwrap_or(f64::NAN)
}

fn main() {
    let scale = Scale::from_args();
    let c = cluster_size(scale);
    let cost = CostModel::default();
    let tx_bytes = 341u64; // standard workload transaction size

    let sweep: Vec<usize> = vec![100, 500, 1_000, 2_000, 4_000];

    let mut cpu = Table::new(
        format!("E5 (model): per-member verification CPU, cluster size c={c}"),
        ["txs/block", "solo (ms)", "collaborative (ms)", "speedup"],
    );
    let mut latency = Table::new(
        format!("E5 (measured): intra-cluster commit latency, c={c}"),
        [
            "txs/block",
            "solo commit (ms)",
            "collaborative commit (ms)",
            "saved (ms)",
        ],
    );

    for &n_txs in &sweep {
        let body = n_txs as u64 * tx_bytes;
        let solo_cpu = cost.solo_block_validation(n_txs, body).as_millis_f64();
        let collab_cpu = cost
            .collaborative_member_validation(n_txs, body, c)
            .as_millis_f64();
        cpu.row([
            n_txs.to_string(),
            format!("{solo_cpu:.2}"),
            format!("{collab_cpu:.2}"),
            format!("{:.1}x", solo_cpu / collab_cpu.max(1e-9)),
        ]);

        let solo_commit = commit_latency_ms(c, n_txs, body, false, &cost);
        let collab_commit = commit_latency_ms(c, n_txs, body, true, &cost);
        latency.row([
            n_txs.to_string(),
            format!("{solo_commit:.2}"),
            format!("{collab_commit:.2}"),
            format!("{:.2}", solo_commit - collab_commit),
        ]);
    }

    emit(
        "E5",
        "Collaborative vs solo verification",
        &format!("scale={scale:?}, c={c}, tx={tx_bytes}B, sig=80us, exec=2us"),
        &[&cpu, &latency],
    );
}
