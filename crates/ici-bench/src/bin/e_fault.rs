//! **E-fault (reconstructed) — survivability under deterministic churn.**
//!
//! Drives ICIStrategy through a seed-deterministic fault schedule
//! (crashes, cluster-correlated churn, message loss/duplication/delay,
//! partition windows) and reports the survivability numbers the paper's
//! failure argument rests on: recovery success rate, re-replication
//! traffic, commit latency under churn, and worst-case availability.
//! Every repaired cluster must pass the shard-level Merkle audit — the
//! run asserts recovery at content level, not replica count.
//!
//! The same `--seed` produces a byte-identical fault schedule and (with
//! telemetry off) a byte-identical `results/e_fault.json`; CI runs it
//! twice and diffs the files.
//!
//! Run: `cargo run --release -p ici-bench --bin e_fault [--paper] [--seed N]`

use ici_bench::{emit, quiet_link, standard_workload, Scale};
use ici_core::config::IciConfig;
use ici_faults::plan::{ByzantineConfig, ChurnConfig, MessageFaultSpec, PartitionPolicy};
use ici_sim::fault_run::{run_ici_under_faults, FaultProfile, StageChurn};
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

/// Parses `--seed N` from the process arguments (default 42).
fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn main() {
    let scale = Scale::from_args();
    let seed = seed_from_args();
    let (nodes, cluster_size, rounds) = match scale {
        Scale::Small => (48usize, 12usize, 16usize),
        Scale::Paper => (256, 16, 24),
    };

    let config = IciConfig::builder()
        .nodes(nodes)
        .cluster_size(cluster_size)
        .replication(2)
        .link(quiet_link())
        .seed(seed)
        .build()
        .expect("valid configuration");
    let profile = FaultProfile {
        seed,
        rounds,
        churn: ChurnConfig {
            crash_prob: 0.04,
            restart_prob: 0.45,
            cluster_churn_prob: 0.08,
            cluster_churn_fraction: 0.25,
            min_live_per_cluster: 6,
            ensure_cycle_per_cluster: true,
        },
        partitions: PartitionPolicy {
            prob: 0.1,
            max_duration_rounds: 2,
        },
        messages: MessageFaultSpec {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.05,
            max_extra_delay_ms: 25.0,
        },
        // Crash-only experiment: Byzantine actors live in e_byz. The
        // inert config draws nothing, keeping e_fault.json byte-stable.
        byzantine: ByzantineConfig::default(),
        // Every third round also loses a verifier *between* lifecycle
        // stages of the proposal itself — the staged pipeline's
        // boundary re-sync is part of what this experiment certifies.
        stage_churn: StageChurn { interval: 3 },
    };

    let (network, summary) = run_ici_under_faults(config, 30, standard_workload(seed), profile)
        .expect("fault plan builds over the formed clusters");

    let mut survivability = Table::new(
        format!("E-fault: survivability under churn, N={nodes}, c={cluster_size}, seed={seed}"),
        ["metric", "value"],
    );
    survivability
        .row([
            "fault schedule fingerprint".to_string(),
            format!("{:016x}", summary.plan_fingerprint),
        ])
        .row(["rounds".to_string(), summary.rounds.to_string()])
        .row([
            "committed blocks".to_string(),
            summary.committed_blocks.to_string(),
        ])
        .row([
            "skipped rounds (liveness loss)".to_string(),
            summary.skipped_rounds.to_string(),
        ])
        .row(["crash events".to_string(), summary.crash_events.to_string()])
        .row([
            "restart events".to_string(),
            summary.restart_events.to_string(),
        ])
        .row([
            "stage-boundary crashes".to_string(),
            summary.stage_crash_events.to_string(),
        ])
        .row([
            "stage-crash rounds committed".to_string(),
            summary.stage_crash_commits.to_string(),
        ])
        .row([
            "recovery attempts".to_string(),
            summary.recovery_attempts.to_string(),
        ])
        .row([
            "recovery success rate".to_string(),
            format!("{:.1}%", summary.recovery_success_rate() * 100.0),
        ])
        .row([
            "re-replication traffic".to_string(),
            format_bytes(summary.repair_bytes),
        ])
        .row([
            "repair transfers".to_string(),
            summary.repair_transfers.to_string(),
        ])
        .row([
            "cross-cluster fetches".to_string(),
            summary.cross_cluster_fetches.to_string(),
        ])
        .row([
            "unrecoverable heights".to_string(),
            summary.unrecoverable_heights.len().to_string(),
        ])
        .row([
            "min live nodes".to_string(),
            summary.min_live_nodes.to_string(),
        ])
        .row([
            "min cluster availability".to_string(),
            format!("{:.3}", summary.min_availability),
        ])
        .row([
            "commit latency p50 (ms)".to_string(),
            format!("{:.1}", summary.commit_latency.p50_ms),
        ])
        .row([
            "commit latency p95 (ms)".to_string(),
            format!("{:.1}", summary.commit_latency.p95_ms),
        ])
        .row([
            "final Merkle audit".to_string(),
            if summary.final_audit_clean {
                format!(
                    "clean ({} shards re-hashed)",
                    summary.merkle_shards_verified
                )
            } else {
                "FAILED".to_string()
            },
        ]);

    let mut cycles = Table::new(
        "E-fault: crash-and-recover cycles per cluster".to_string(),
        ["cluster", "cycles", "final live members", "final audit"],
    );
    let audits = network.merkle_audit_all();
    for (c, count) in summary.cycles_per_cluster.iter().enumerate() {
        let cluster = network.clusters()[c];
        cycles.row([
            format!("c{c}"),
            count.to_string(),
            network.live_members(cluster).len().to_string(),
            if audits[c].is_clean() {
                "clean"
            } else {
                "FAILED"
            }
            .to_string(),
        ]);
    }

    // The acceptance gates: every cluster saw at least one full
    // crash-and-recover cycle, every recovery was verified at shard
    // level, and nothing was permanently lost.
    assert!(
        summary.cycles_per_cluster.iter().all(|c| *c >= 1),
        "a cluster never completed a crash-and-recover cycle: {:?}",
        summary.cycles_per_cluster
    );
    assert!(
        (summary.recovery_success_rate() - 1.0).abs() < f64::EPSILON,
        "recovery fell short of 100%: {summary:?}"
    );
    assert!(summary.final_audit_clean, "final Merkle audit failed");
    assert!(
        summary.stage_crash_events > 0,
        "stage churn never fired: {summary:?}"
    );
    assert!(
        summary.unrecoverable_heights.is_empty(),
        "lost heights: {:?}",
        summary.unrecoverable_heights
    );

    emit(
        "E_fault",
        "Reconstructed: survivability under deterministic fault injection",
        &format!(
            "scale={scale:?}, N={nodes}, c={cluster_size}, r=2, rounds={rounds}, seed={seed}, \
             plan={:016x}",
            summary.plan_fingerprint
        ),
        &[&survivability, &cycles],
    );
}
