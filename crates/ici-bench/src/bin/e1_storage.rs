//! **E1 / Table I — per-node storage vs network size.**
//!
//! Reproduces the abstract's headline: "our strategy just needs 25% of
//! storage space needed by Rapidchain". For each network size the three
//! strategies run the same workload; the table reports measured mean
//! per-node storage, its fraction of one full ledger replica, and the
//! ICI/RapidChain ratio. A second table evaluates the closed-form model at
//! the exact paper-scale parameters (N = 4000, committees of 250,
//! clusters of 64, r = 1, 10k blocks of 1 MB).
//!
//! Run: `cargo run --release -p ici-bench --bin e1_storage [--paper]`

use ici_baselines::analytic::{
    full_replication_per_node, ici_per_node, ici_to_rapidchain_ratio, rapidchain_per_node,
    LedgerShape,
};
use ici_baselines::full::FullConfig;
use ici_baselines::rapidchain::RapidChainConfig;
use ici_bench::{
    block_count, cluster_size, committee_size, emit, network_sizes, quiet_link, standard_workload,
    txs_per_block, Scale,
};
use ici_core::config::IciConfig;
use ici_sim::runner::{run_full, run_ici, run_rapidchain};
use ici_sim::table::{fmt_f64, Table};
use ici_storage::stats::format_bytes;

fn main() {
    let scale = Scale::from_args();
    let blocks = block_count(scale);
    let txs = txs_per_block(scale);
    let c = cluster_size(scale);
    let m = committee_size(scale);
    let r = 1usize;

    let mut measured = Table::new(
        format!("E1 (measured): per-node storage, {blocks} blocks x {txs} txs, r={r}"),
        [
            "N",
            "strategy",
            "mean/node",
            "max/node",
            "fraction of ledger",
            "ICI/Rapid",
        ],
    );

    for n in network_sizes(scale) {
        let workload = standard_workload(7);

        let (_, full) = run_full(
            FullConfig {
                nodes: n,
                link: quiet_link(),
                seed: 7,
                ..FullConfig::default()
            },
            blocks,
            txs,
            workload,
        );
        // RapidChain commits one block per shard per round; match total
        // ledger volume by running blocks/k rounds per shard where k is
        // the shard count... instead we run the same number of *rounds* as
        // ICI runs blocks, then compare per-node storage as a fraction of
        // each system's own ledger (the fair normalisation).
        let shards = n.div_ceil(m);
        let rounds = (blocks / shards).max(1);
        let (_, rapid) = run_rapidchain(
            RapidChainConfig {
                nodes: n,
                committee_size: m,
                link: quiet_link(),
                seed: 7,
                ..RapidChainConfig::default()
            },
            rounds,
            txs,
            workload,
        );
        let (_, ici) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(r)
                .link(quiet_link())
                .seed(7)
                .build()
                .expect("valid configuration"),
            blocks,
            txs,
            workload,
        );

        let ratio = ici.storage_fraction() / rapid.storage_fraction();
        for summary in [&full, &rapid, &ici] {
            let is_ici = summary.strategy == "ICIStrategy";
            measured.row([
                n.to_string(),
                summary.strategy.clone(),
                format_bytes(summary.storage.mean as u64),
                format_bytes(summary.storage.max),
                format!("{:.4}", summary.storage_fraction()),
                if is_ici {
                    format!("{:.3}", ratio)
                } else {
                    String::new()
                },
            ]);
        }
    }

    // Analytic table at the exact paper-scale parameters.
    let shape = LedgerShape {
        blocks: 10_000,
        mean_body_bytes: 1_000_000,
    };
    let mut analytic = Table::new(
        "E1 (analytic): paper-scale parameters, 10k blocks x 1 MB",
        ["config", "per-node storage", "fraction", "ICI/Rapid"],
    );
    let full_b = full_replication_per_node(shape);
    let rapid_b = rapidchain_per_node(shape, 4_000, 250);
    let ici_b = ici_per_node(shape, 64, 1);
    let ratio = ici_to_rapidchain_ratio(shape, 4_000, 250, 64, 1);
    analytic.row([
        "FullReplication (N=4000)".to_string(),
        format_bytes(full_b as u64),
        "1.0000".to_string(),
        String::new(),
    ]);
    analytic.row([
        "RapidChain (committees of 250 => 16 shards)".to_string(),
        format_bytes(rapid_b as u64),
        format!("{:.4}", rapid_b / full_b),
        String::new(),
    ]);
    analytic.row([
        "ICIStrategy (c=64, r=1)".to_string(),
        format_bytes(ici_b as u64),
        format!("{:.4}", ici_b / full_b),
        fmt_f64(ratio),
    ]);

    emit(
        "E1",
        "Per-node storage vs network size (Table I)",
        &format!("scale={scale:?}, c={c}, committee={m}, r={r}, blocks={blocks}, txs/block={txs}"),
        &[&measured, &analytic],
    );

    println!(
        "Headline check: ICI/RapidChain analytic ratio at paper parameters = {ratio:.3} (abstract claims 0.25)"
    );
}
