//! **E2 / Fig. storage-sweep — per-node storage vs cluster size and
//! replication.**
//!
//! "Reducing the amount data that each participate need to store": the
//! per-node footprint under ICIStrategy is `headers + (r/c)·bodies`. The
//! sweep varies cluster size `c` and replication `r` at fixed N and chain,
//! reporting measured mean/max per-node storage, the analytic prediction,
//! and the storage-balance ratio (max/mean — how evenly the assignment
//! spreads bodies).
//!
//! Run: `cargo run --release -p ici-bench --bin e2_cluster_sweep [--paper]`

use ici_baselines::analytic::{ici_per_node, LedgerShape};
use ici_bench::{block_count, emit, quiet_link, standard_workload, txs_per_block, Scale};
use ici_chain::block::BlockHeader;
use ici_core::config::IciConfig;
use ici_sim::runner::run_ici;
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Small => 256,
        Scale::Paper => 2_048,
    };
    let blocks = block_count(scale);
    let txs = txs_per_block(scale);

    let cluster_sizes: Vec<usize> = match scale {
        Scale::Small => vec![8, 16, 32, 64],
        Scale::Paper => vec![16, 32, 64, 128],
    };
    let replications = [1usize, 2, 3];

    let mut table = Table::new(
        format!("E2: ICI per-node storage sweep, N={n}, {blocks} blocks x {txs} txs"),
        [
            "c",
            "r",
            "mean/node",
            "max/node",
            "analytic mean",
            "fraction of ledger",
            "balance (max/mean)",
        ],
    );

    for &c in &cluster_sizes {
        for &r in &replications {
            if r > c {
                continue;
            }
            let (network, summary) = run_ici(
                IciConfig::builder()
                    .nodes(n)
                    .cluster_size(c)
                    .replication(r)
                    .link(quiet_link())
                    .seed(11)
                    .build()
                    .expect("valid configuration"),
                blocks,
                txs,
                standard_workload(11),
            );
            // Analytic prediction with the *actual* measured ledger shape.
            let chain_blocks = network.chain_len();
            let mean_body = if chain_blocks > 0 {
                (network.full_replica_bytes() - chain_blocks * BlockHeader::ENCODED_LEN as u64)
                    / chain_blocks
            } else {
                0
            };
            let predicted = ici_per_node(
                LedgerShape {
                    blocks: chain_blocks,
                    mean_body_bytes: mean_body,
                },
                c,
                r,
            );
            table.row([
                c.to_string(),
                r.to_string(),
                format_bytes(summary.storage.mean as u64),
                format_bytes(summary.storage.max),
                format_bytes(predicted as u64),
                format!("{:.4}", summary.storage_fraction()),
                format!("{:.2}", summary.storage.balance_ratio()),
            ]);
        }
    }

    emit(
        "E2",
        "ICI per-node storage vs cluster size and replication",
        &format!("scale={scale:?}, N={n}, blocks={blocks}, txs/block={txs}"),
        &[&table],
    );
}
