//! **E-byz (reconstructed) — survivability under Byzantine actors.**
//!
//! Drives ICIStrategy and both baselines (full replication, RapidChain
//! committees) through the *same* seed-deterministic fault schedule of
//! crash churn plus Byzantine action — equivocating proposers and
//! false-verdict verifiers — and compares how each strategy detects and
//! pays for it:
//!
//! * **detection** — what fraction of equivocation attempts were
//!   exposed by cross-audience exchange, and how many lying verifiers
//!   were named by honest re-verification;
//! * **safety hazard** — equivocations that went undetected because one
//!   audience half held no honest live witness (no strategy commits a
//!   twin, but an undetected split is a real hazard and is counted);
//! * **waste** — bytes spent disseminating blocks that Byzantine action
//!   then killed, as a fraction of all traffic.
//!
//! The same `--seed` produces a byte-identical `results/e_byz.json`
//! (telemetry off); CI runs it twice and under 1 and 4 worker threads
//! and diffs the files.
//!
//! Run: `cargo run --release -p ici-bench --bin e_byz [--paper] [--seed N]`

use ici_baselines::full::FullConfig;
use ici_baselines::rapidchain::RapidChainConfig;
use ici_bench::{emit, quiet_link, standard_workload, Scale};
use ici_core::config::IciConfig;
use ici_faults::plan::{ByzantineConfig, ChurnConfig};
use ici_sim::baseline_faults::{
    run_full_under_faults, run_rapidchain_under_faults, BaselineFaultSummary,
};
use ici_sim::fault_run::{run_ici_under_faults, FaultProfile, FaultRunSummary};
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

/// Parses `--seed N` from the process arguments (default 42).
fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The shared adversary: every strategy faces this schedule shape.
fn byz_profile(seed: u64, rounds: usize, min_live: usize) -> FaultProfile {
    FaultProfile {
        seed,
        rounds,
        churn: ChurnConfig {
            crash_prob: 0.03,
            restart_prob: 0.5,
            cluster_churn_prob: 0.0,
            cluster_churn_fraction: 0.0,
            min_live_per_cluster: min_live,
            ensure_cycle_per_cluster: false,
        },
        byzantine: ByzantineConfig {
            equivocation_prob: 0.25,
            false_verdict_fraction: 0.2,
            flip_prob: 0.3,
            withhold_prob: 0.1,
        },
        ..FaultProfile::default()
    }
}

/// One comparison column, shared between ICI and baseline summaries.
struct Column {
    name: &'static str,
    committed: u64,
    skipped: usize,
    byz_skipped: usize,
    equiv_attempts: usize,
    equiv_detected: usize,
    equiv_rate: f64,
    breaches: usize,
    flips: usize,
    withholds: usize,
    liars: usize,
    liar_rate: f64,
    wasted: u64,
    total: u64,
    min_live: usize,
    fingerprint: u64,
}

impl Column {
    fn from_ici(summary: &FaultRunSummary, total: u64) -> Column {
        Column {
            name: "ici",
            committed: summary.committed_blocks,
            skipped: summary.skipped_rounds,
            byz_skipped: summary.byz_skipped_rounds,
            equiv_attempts: summary.equivocation_attempts,
            equiv_detected: summary.equivocations_detected,
            equiv_rate: summary.equivocation_detection_rate(),
            breaches: summary.safety_breaches,
            flips: summary.verdict_flips,
            withholds: summary.verdict_withholds,
            liars: summary.liars_detected,
            liar_rate: summary.liar_detection_rate(),
            wasted: summary.wasted_bytes,
            total,
            min_live: summary.min_live_nodes,
            fingerprint: summary.plan_fingerprint,
        }
    }

    fn from_baseline(summary: &BaselineFaultSummary) -> Column {
        Column {
            name: summary.strategy,
            committed: summary.committed_blocks,
            skipped: summary.skipped_rounds,
            byz_skipped: summary.byz_skipped_rounds,
            equiv_attempts: summary.equivocation_attempts,
            equiv_detected: summary.equivocations_detected,
            equiv_rate: summary.equivocation_detection_rate(),
            breaches: summary.safety_breaches,
            flips: summary.verdict_flips,
            withholds: summary.verdict_withholds,
            liars: summary.liars_detected,
            liar_rate: summary.liar_detection_rate(),
            wasted: summary.wasted_bytes,
            total: summary.total_bytes,
            min_live: summary.min_live_nodes,
            fingerprint: summary.plan_fingerprint,
        }
    }

    fn wasted_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.wasted as f64 / self.total as f64
        }
    }
}

fn main() {
    let scale = Scale::from_args();
    let seed = seed_from_args();
    let (nodes, cluster_size, rounds, min_live) = match scale {
        Scale::Small => (48usize, 12usize, 16usize, 6usize),
        Scale::Paper => (256, 16, 24, 8),
    };
    let txs_per_block = 30;

    let ici_config = IciConfig::builder()
        .nodes(nodes)
        .cluster_size(cluster_size)
        .replication(2)
        .link(quiet_link())
        .seed(seed)
        .build()
        .expect("valid configuration");
    let (ici_net, ici) = run_ici_under_faults(
        ici_config,
        txs_per_block,
        standard_workload(seed),
        byz_profile(seed, rounds, min_live),
    )
    .expect("fault plan builds over the formed clusters");
    let ici_total = ici_net.net().meter().total().bytes;

    let full_config = FullConfig {
        nodes,
        link: quiet_link(),
        seed,
        ..FullConfig::default()
    };
    let (_, full) = run_full_under_faults(
        full_config,
        txs_per_block,
        standard_workload(seed),
        byz_profile(seed, rounds, min_live),
    )
    .expect("fault plan builds over the node set");

    let rc_config = RapidChainConfig {
        nodes,
        committee_size: cluster_size,
        link: quiet_link(),
        seed,
        ..RapidChainConfig::default()
    };
    let (_, rapidchain) = run_rapidchain_under_faults(
        rc_config,
        txs_per_block,
        standard_workload(seed),
        byz_profile(seed, rounds, min_live),
    )
    .expect("fault plan builds over the committees");

    let columns = [
        Column::from_ici(&ici, ici_total),
        Column::from_baseline(&full),
        Column::from_baseline(&rapidchain),
    ];

    let mut comparison = Table::new(
        format!("E-byz: Byzantine survivability, N={nodes}, c={cluster_size}, seed={seed}"),
        ["metric", "ici", "full", "rapidchain"],
    );
    let row3 = |t: &mut Table, metric: &str, f: &dyn Fn(&Column) -> String| {
        t.row([
            metric.to_string(),
            f(&columns[0]),
            f(&columns[1]),
            f(&columns[2]),
        ]);
    };
    row3(&mut comparison, "committed blocks", &|c| {
        c.committed.to_string()
    });
    row3(&mut comparison, "skipped rounds", &|c| {
        c.skipped.to_string()
    });
    row3(&mut comparison, "rounds lost to Byzantine action", &|c| {
        c.byz_skipped.to_string()
    });
    row3(&mut comparison, "equivocation attempts", &|c| {
        c.equiv_attempts.to_string()
    });
    row3(&mut comparison, "equivocations detected", &|c| {
        c.equiv_detected.to_string()
    });
    row3(&mut comparison, "equivocation detection rate", &|c| {
        format!("{:.1}%", c.equiv_rate * 100.0)
    });
    row3(&mut comparison, "undetected equivocations (hazard)", &|c| {
        c.breaches.to_string()
    });
    row3(&mut comparison, "verdict flips", &|c| c.flips.to_string());
    row3(&mut comparison, "verdict withholds", &|c| {
        c.withholds.to_string()
    });
    row3(&mut comparison, "lying verifiers named", &|c| {
        c.liars.to_string()
    });
    row3(&mut comparison, "liar detection rate", &|c| {
        format!("{:.1}%", c.liar_rate * 100.0)
    });
    row3(&mut comparison, "wasted bytes (killed blocks)", &|c| {
        format_bytes(c.wasted)
    });
    row3(&mut comparison, "total bytes", &|c| format_bytes(c.total));
    row3(&mut comparison, "wasted fraction", &|c| {
        format!("{:.2}%", c.wasted_fraction() * 100.0)
    });
    row3(&mut comparison, "min live nodes", &|c| {
        c.min_live.to_string()
    });
    row3(&mut comparison, "fault schedule fingerprint", &|c| {
        format!("{:016x}", c.fingerprint)
    });

    let mut detail = Table::new(
        "E-byz: ICI detection detail".to_string(),
        ["metric", "value"],
    );
    detail
        .row(["clusters".to_string(), ici.clusters.to_string()])
        .row([
            "remote cluster verdicts missed".to_string(),
            ici.byz_missed_cluster_verdicts.to_string(),
        ])
        .row([
            "recovery success rate".to_string(),
            format!("{:.1}%", ici.recovery_success_rate() * 100.0),
        ])
        .row([
            "final Merkle audit".to_string(),
            if ici.final_audit_clean {
                "clean".to_string()
            } else {
                "FAILED".to_string()
            },
        ]);

    // Acceptance gates. The adversary must actually show up, ICI must
    // expose every equivocation (honest witnesses in both audience
    // halves at this scale) without a single undetected split, name
    // every lying verifier, and still finish with clean storage.
    for c in &columns {
        assert!(
            c.equiv_attempts > 0,
            "vacuous run: `{}` saw no equivocation attempts",
            c.name
        );
    }
    assert!(
        (ici.equivocation_detection_rate() - 1.0).abs() < f64::EPSILON,
        "ICI missed an equivocation: {ici:?}"
    );
    assert_eq!(ici.safety_breaches, 0, "undetected equivocation: {ici:?}");
    assert!(
        (ici.liar_detection_rate() - 1.0).abs() < f64::EPSILON,
        "ICI failed to name a lying verifier: {ici:?}"
    );
    assert!(ici.final_audit_clean, "final Merkle audit failed");
    assert!(
        ici.committed_blocks > 0,
        "Byzantine schedule starved the chain entirely"
    );

    emit(
        "E_byz",
        "Reconstructed: survivability under Byzantine proposers and verifiers",
        &format!(
            "scale={scale:?}, N={nodes}, c={cluster_size}, r=2, rounds={rounds}, seed={seed}, \
             equiv=0.25, byz_frac=0.2, flip=0.3, withhold=0.1, plan={:016x}",
            ici.plan_fingerprint
        ),
        &[&comparison, &detail],
    );
}
