//! **E-scale — sharded world state & mempool at the million-account tier.**
//!
//! Sustains zipf-skewed burst traffic from a large funded universe
//! through the full scale path: sharded fee-market mempool admission,
//! in-place block building on a sharded [`WorldState`], the incremental
//! v2 (`ShardedV2`) state commitment, and in-place validation on a
//! second long-lived state. Per-block commitment cost is proportional
//! to *touched* buckets/accounts — the run asserts it — never to the
//! total account count, which is what makes the paper regime
//! (`--paper`: 1M accounts) tractable.
//!
//! Two output channels, deliberately separate:
//!
//! * `results/e_scale.json` — deterministic tables only (counts, roots,
//!   ratios). Byte-identical across the shards {1,4} × threads {1,4}
//!   matrix; CI compares them.
//! * A `SCALE_STATS` stdout line — wall-clock throughput, commit-latency
//!   percentiles, and the allocator's peak-live-bytes high-water mark.
//!   Host-dependent, so it feeds the regenerated
//!   `results/BENCH_scale.json`, never the committed record.
//!
//! Run: `cargo run --release -p ici-bench --bin e_scale [--paper] [--seed N]`

use std::time::Instant;

use ici_bench::harness;
use ici_bench::{alloc, emit, Scale};
use ici_chain::block::{Block, BlockHeader};
use ici_chain::genesis::GenesisConfig;
use ici_chain::mempool::{Mempool, MempoolError};
use ici_chain::state::StateCommitment;
use ici_chain::transaction::Address;
use ici_chain::validation::validate_block_in_place;
use ici_crypto::sha256::Digest;
use ici_sim::table::{fmt_f64, Table};
use ici_workload::{
    PayloadSize, SenderDistribution, TrafficConfig, TrafficStream, WorkloadConfig,
    WorkloadGenerator,
};

/// Parses `--seed N` from the process arguments (default 42).
fn seed_from_args() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

/// The fixed proposing node (fee collector derives from it).
const PROPOSER: u64 = 7;

fn main() {
    let scale = Scale::from_args();
    let seed = seed_from_args();
    let (accounts, rounds, base_txs) = match scale {
        Scale::Small => (50_000u64, 40u64, 250usize),
        Scale::Paper => (1_000_000, 60, 1_000),
    };
    let shard_count = ici_chain::shard::state_shards();
    let threads = ici_par::threads();

    // Funded universe + two long-lived states: the proposer's and an
    // independent validator's (advanced in place — no per-block clone).
    let genesis_cfg = GenesisConfig::uniform(accounts, 1_000_000);
    let genesis = genesis_cfg.genesis_block();
    let mut proposer_state = genesis_cfg.initial_state();
    let genesis_v2 = proposer_state.sharded_root();
    let mut validator_state = proposer_state.clone();

    let workload = WorkloadConfig {
        accounts,
        senders: SenderDistribution::Zipf { exponent: 1.1 },
        payload: PayloadSize::Fixed(64),
        amount: 1,
        fee: 1,
        fee_jitter: 9,
        seed,
    };
    let traffic = TrafficConfig {
        base_txs_per_round: base_txs,
        burst_every: 8,
        burst_multiplier: 3,
    };
    let mut stream = TrafficStream::new(WorkloadGenerator::new(workload), traffic);
    // Capacity 2× the block size: burst rounds overrun it, so the fee
    // market (replace/evict/reject) is exercised, deterministically.
    let mut pool = Mempool::new(base_txs * 2);

    let collector = Address::from_seed(PROPOSER);
    let mut parent = *genesis.header();
    let mut blocks: Vec<Block> = Vec::with_capacity(rounds as usize);

    let mut admitted = 0u64;
    let mut underpriced = 0u64;
    let mut pool_full = 0u64;
    let mut committed_txs = 0u64;
    let mut skipped_invalid = 0u64;
    let mut dirty_bucket_sum = 0u64;
    let mut touched_accounts_sum = 0u64;
    let mut peak_pool_depth = 0usize;
    let mut commit_ns: Vec<u128> = Vec::with_capacity(rounds as usize);

    let run_start = Instant::now(); // lint:allow(wall-clock) -- throughput measurement, stdout-only
    for round in 0..rounds {
        for tx in stream.next_round() {
            match pool.insert(tx) {
                Ok(()) => admitted += 1,
                Err(MempoolError::Underpriced { .. }) => underpriced += 1,
                Err(MempoolError::PoolFull) => pool_full += 1,
                Err(e) => unreachable!("generator emitted rejected tx: {e}"),
            }
        }
        peak_pool_depth = peak_pool_depth.max(pool.len());

        // Proposer: in-place build. `apply` is per-tx atomic, so a
        // transaction invalidated by fee-market eviction of its
        // predecessor (nonce gap) is skipped without poisoning state.
        let pending = pool.take_for_block(base_txs);
        let mut included = Vec::with_capacity(pending.len());
        for tx in pending {
            match proposer_state.apply(&tx, collector) {
                Ok(()) => included.push(tx),
                Err(_) => skipped_invalid += 1,
            }
        }
        let mut touched = std::collections::BTreeSet::new();
        for tx in &included {
            touched.insert(tx.sender_address());
            touched.insert(tx.recipient());
        }
        touched.insert(collector);
        touched_accounts_sum += touched.len() as u64;
        dirty_bucket_sum += proposer_state.dirty_buckets() as u64;

        let state_root = proposer_state.sharded_root();
        let block = Block::new(
            BlockHeader {
                height: round + 1,
                parent: parent.id(),
                tx_root: Digest::ZERO, // filled by Block::new
                state_root,
                timestamp_ms: (round + 1) * 1_000,
                proposer: PROPOSER,
                pow_nonce: 0,
                tx_count: 0,
                body_len: 0,
            },
            included,
        );

        // Validator: in-place execution + v2 root cross-check. This is
        // the per-block commit cost a deployed verifier would pay.
        let t0 = Instant::now(); // lint:allow(wall-clock) -- commit-latency sample, stdout-only
        validate_block_in_place(
            &block,
            &parent,
            &mut validator_state,
            StateCommitment::ShardedV2,
        )
        .unwrap_or_else(|e| panic!("round {round}: own block failed validation: {e}"));
        commit_ns.push(t0.elapsed().as_nanos());

        committed_txs += block.transactions().len() as u64;
        for tx in block.transactions() {
            pool.prune_below(&tx.sender_address(), tx.nonce() + 1);
        }
        parent = *block.header();
        blocks.push(block);
    }
    let wall_s = run_start.elapsed().as_secs_f64();

    // ---- correctness gates ------------------------------------------------
    assert_eq!(
        proposer_state, validator_state,
        "proposer and validator diverged"
    );
    assert_eq!(
        proposer_state.total_supply(),
        accounts * 1_000_000,
        "supply not conserved"
    );
    // Replay the whole chain on a fresh single-shard (sequential
    // reference) state: contents, flat v1 root, and v2 root must all
    // agree with the incrementally-maintained sharded run.
    let mut reference = ici_chain::state::WorldState::with_balances_sharded(
        genesis_cfg.allocations().iter().copied(),
        1,
    );
    for block in &blocks {
        reference
            .apply_block(block)
            .unwrap_or_else(|(i, e)| panic!("replay failed at tx {i}: {e}"));
    }
    assert_eq!(reference, proposer_state, "replay contents diverge");
    assert_eq!(reference.root(), proposer_state.root(), "v1 root diverges");
    assert_eq!(
        reference.sharded_root(),
        parent.state_root,
        "v2 root diverges from sealed header"
    );

    // Commitment work must track touched accounts, not the universe.
    let mean_touched = touched_accounts_sum as f64 / rounds as f64;
    let mean_dirty = dirty_bucket_sum as f64 / rounds as f64;
    assert!(
        mean_dirty <= ici_chain::shard::STATE_BUCKETS as f64,
        "dirty buckets cannot exceed the bucket count"
    );
    assert!(
        mean_touched * 10.0 < accounts as f64,
        "touched accounts per block ({mean_touched:.0}) not small vs universe ({accounts})"
    );

    // ---- deterministic record --------------------------------------------
    let mut table = Table::new(
        format!("E-scale: {accounts} accounts, {rounds} rounds, base {base_txs} tx/round"),
        ["metric", "value"],
    );
    table.row(["accounts".to_string(), accounts.to_string()]);
    table.row(["rounds".to_string(), rounds.to_string()]);
    table.row(["tx admitted".to_string(), admitted.to_string()]);
    table.row(["tx underpriced".to_string(), underpriced.to_string()]);
    table.row(["tx pool-full rejected".to_string(), pool_full.to_string()]);
    table.row([
        "fee-market evictions".to_string(),
        pool.evicted().to_string(),
    ]);
    table.row(["peak pool depth".to_string(), peak_pool_depth.to_string()]);
    table.row(["tx committed".to_string(), committed_txs.to_string()]);
    table.row([
        "tx skipped (nonce gap)".to_string(),
        skipped_invalid.to_string(),
    ]);
    table.row([
        "mean touched accounts/block".to_string(),
        fmt_f64(mean_touched),
    ]);
    table.row([
        "mean dirty buckets/block (of 64)".to_string(),
        fmt_f64(mean_dirty),
    ]);
    table.row([
        "touched fraction of universe".to_string(),
        fmt_f64(mean_touched / accounts as f64),
    ]);
    table.row(["genesis v2 root".to_string(), genesis_v2.to_hex()]);
    table.row(["final v2 root".to_string(), parent.state_root.to_hex()]);
    table.row(["final head id".to_string(), parent.id().to_hex()]);

    emit(
        "E_scale",
        "Sharded state & mempool under sustained zipf traffic",
        &format!(
            "scale={scale:?}, seed={seed}, accounts={accounts}, rounds={rounds}, \
             base_txs={base_txs}, burst=3x/8, zipf=1.1, commitment=v2"
        ),
        &[&table],
    );

    // ---- host-dependent stats (never in the committed record) -------------
    let stats = harness::stats(&mut commit_ns).unwrap_or(harness::BenchStats {
        iters: 0,
        min_ns: 0,
        median_ns: 0,
        mean_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
    });
    println!(
        "SCALE_STATS id=E_scale accounts={accounts} shards={shard_count} threads={threads} \
         committed={committed_txs} wall_s={wall_s:.3} tps={:.1} commit_p50_ns={} \
         commit_p90_ns={} commit_p99_ns={} peak_live_bytes={}",
        committed_txs as f64 / wall_s,
        stats.median_ns,
        stats.p90_ns,
        stats.p99_ns,
        alloc::stats().peak_live_bytes,
    );
}
