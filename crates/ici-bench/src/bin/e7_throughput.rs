//! **E7 / Table II — throughput and commit latency vs network size.**
//!
//! "Improve the blockchain performance": ICIStrategy commits with one
//! low-latency intra-cluster BFT round plus leader-relayed cluster
//! verification, against full-replication flood-and-validate-everywhere.
//! RapidChain trades per-shard latency for shard-parallel throughput, so
//! it leads on raw tps while losing on storage (E1) — the honest shape of
//! the comparison.
//!
//! Run: `cargo run --release -p ici-bench --bin e7_throughput [--paper]`

use ici_baselines::full::FullConfig;
use ici_baselines::rapidchain::RapidChainConfig;
use ici_bench::{
    block_count, cluster_size, committee_size, emit, network_sizes, quiet_link, standard_workload,
    txs_per_block, Scale,
};
use ici_core::config::IciConfig;
use ici_sim::runner::{run_full, run_ici, run_rapidchain};
use ici_sim::table::{fmt_f64, Table};

fn main() {
    let scale = Scale::from_args();
    let blocks = block_count(scale);
    let txs = txs_per_block(scale);
    let c = cluster_size(scale);
    let m = committee_size(scale);

    let mut table = Table::new(
        format!("E7: throughput and commit latency, {blocks} blocks x {txs} txs"),
        [
            "N",
            "strategy",
            "tps",
            "commit p50 (ms)",
            "commit p95 (ms)",
            "commit max (ms)",
        ],
    );

    for n in network_sizes(scale) {
        let workload = standard_workload(17);

        let (_, full) = run_full(
            FullConfig {
                nodes: n,
                link: quiet_link(),
                seed: 17,
                ..FullConfig::default()
            },
            blocks,
            txs,
            workload,
        );
        let shards = n.div_ceil(m);
        let (_, rapid) = run_rapidchain(
            RapidChainConfig {
                nodes: n,
                committee_size: m,
                link: quiet_link(),
                seed: 17,
                ..RapidChainConfig::default()
            },
            (blocks / shards).max(1),
            txs,
            workload,
        );
        let (_, ici) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(2)
                .link(quiet_link())
                .seed(17)
                .build()
                .expect("valid configuration"),
            blocks,
            txs,
            workload,
        );

        for summary in [&full, &rapid, &ici] {
            table.row([
                n.to_string(),
                summary.strategy.clone(),
                fmt_f64(summary.throughput_tps),
                fmt_f64(summary.commit_latency.p50_ms),
                fmt_f64(summary.commit_latency.p95_ms),
                fmt_f64(summary.commit_latency.max_ms),
            ]);
        }
    }

    emit(
        "E7",
        "Throughput and commit latency vs network size (Table II)",
        &format!("scale={scale:?}, c={c}, committee={m}, blocks={blocks}, txs/block={txs}"),
        &[&table],
    );
}
