//! **E11 (extension) — Byzantine proposers vs collaborative verification.**
//!
//! What does a lying proposer cost? With probability β the height's
//! elected leader proposes a block containing a transaction with a forged
//! signature. Collaborative verification splits the signature checks
//! across the cluster, so exactly one member's slice fails, the member
//! votes reject, and the cluster falls back to the next leader in the
//! lottery order. The table reports the detection rate (must be 100 %),
//! which member caught it, and the bandwidth wasted on disseminating
//! blocks that were then rejected.
//!
//! Run: `cargo run --release -p ici-bench --bin e11_byzantine [--paper]`

use ici_bench::{emit, quiet_link, Scale};
use ici_chain::block::{Block, BlockHeader};
use ici_chain::builder::BlockBuilder;
use ici_chain::codec::{Decode, Encode};
use ici_chain::genesis::GenesisConfig;
use ici_chain::transaction::{Address, Transaction};
use ici_core::config::IciConfig;
use ici_core::network::IciNetwork;
use ici_core::verify::Verdict;
use ici_crypto::sig::Keypair;
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

/// Builds a valid candidate block, then forges the signature of one
/// transaction (recomputing the Merkle commitments so only the signature
/// check can catch it).
fn forged_block(net: &IciNetwork, n_txs: u64, victim: usize, nonce: u64) -> Block {
    let mut builder = BlockBuilder::new(net.tip(), net.state().clone(), 1, nonce * 1_000 + 1);
    for i in 0..n_txs {
        builder
            .push(Transaction::signed(
                &Keypair::from_seed(i),
                Address::from_seed(i + 1),
                2,
                1,
                nonce,
                vec![0u8; 120],
            ))
            .expect("valid transaction");
    }
    let block = builder.seal();
    let (header, mut body) = block.into_parts();
    let mut bytes = body[victim].to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 1; // flip one signature bit
    body[victim] = Transaction::from_bytes(&bytes).expect("decodes");
    Block::new(header, body)
}

fn main() {
    let scale = Scale::from_args();
    let (nodes, c) = match scale {
        Scale::Small => (64usize, 16usize),
        Scale::Paper => (256, 64),
    };
    let n_txs = 32u64;
    let trials = 64usize;

    let config = IciConfig::builder()
        .nodes(nodes)
        .cluster_size(c)
        .replication(2)
        .genesis(GenesisConfig::uniform(64, u64::MAX / 1_000_000))
        .link(quiet_link())
        .seed(47)
        .build()
        .expect("valid configuration");
    let net = IciNetwork::new(config).expect("constructs");

    let mut detection = Table::new(
        format!("E11: forged-signature detection, c={c}, {n_txs} txs/block, {trials} trials"),
        [
            "forged tx index",
            "detected",
            "catching verifier covers index",
            "other clusters agree",
        ],
    );
    let cluster = net.clusters()[0];
    let members = net.live_members(cluster);
    let mut detected = 0usize;
    for trial in 0..trials {
        let victim = trial % n_txs as usize;
        let block = forged_block(&net, n_txs, victim, 0);
        let verdict = net.collaborative_verify(cluster, &block);
        let (caught, covers) = match &verdict {
            Verdict::RejectSignature { verifier, tx_index } => {
                let ranges = ici_chain::validation::split_ranges(n_txs as usize, members.len());
                let covering = members
                    .iter()
                    .zip(&ranges)
                    .find(|(_, (s, e))| (*s..*e).contains(tx_index))
                    .map(|(m, _)| *m);
                (true, covering == Some(*verifier))
            }
            _ => (false, false),
        };
        if caught {
            detected += 1;
        }
        let network_rejects = net.network_verify(&block).is_err();
        if trial < 8 {
            detection.row([
                victim.to_string(),
                if caught { "yes" } else { "NO" }.to_string(),
                if covers { "yes" } else { "NO" }.to_string(),
                if network_rejects { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    detection.row([
        format!("(all {trials} trials)"),
        format!("{detected}/{trials}"),
        String::new(),
        String::new(),
    ]);

    // Bandwidth wasted per rejected proposal: the intra-cluster
    // dissemination happens before the reject votes kill it.
    let block = forged_block(&net, n_txs, 0, 0);
    let body_bytes = block.body_len() as u64;
    let header_bytes = BlockHeader::ENCODED_LEN as u64;
    let r = 2u64;
    let wasted = r * (header_bytes + body_bytes)
        + (c as u64 - 1 - r) * header_bytes
        + 2 * (c as u64) * (c as u64 - 1) * ici_consensus::pbft::VOTE_BYTES;
    let mut cost = Table::new(
        "E11 (model): bandwidth per rejected proposal (one cluster)",
        ["component", "bytes"],
    );
    cost.row([
        "bodies to r owners",
        &format_bytes(r * (header_bytes + body_bytes)),
    ]);
    cost.row([
        "headers to the rest",
        &format_bytes((c as u64 - 1 - r) * header_bytes),
    ]);
    cost.row([
        "reject votes (2 rounds)",
        &format_bytes(2 * (c as u64) * (c as u64 - 1) * ici_consensus::pbft::VOTE_BYTES),
    ]);
    cost.row(["total wasted", &format_bytes(wasted)]);

    emit(
        "E11",
        "Byzantine proposers vs collaborative verification",
        &format!("scale={scale:?}, N={nodes}, c={c}, txs/block={n_txs}, trials={trials}"),
        &[&detection, &cost],
    );

    assert_eq!(detected, trials, "a forged signature went undetected");
    println!("detection rate: {detected}/{trials} (collaborative verification is sound)");
}
