//! **E4 / Fig. bootstrap — joining-node download vs chain length.**
//!
//! "The ICIStrategy could greatly save the overhead of bootstrapping": a
//! joiner downloads all headers plus only its assigned `≈ r/c` share of
//! bodies, vs the full ledger (full replication) or the full shard
//! (RapidChain). The figure data sweeps chain length and reports bytes
//! downloaded and simulated transfer time for each strategy.
//!
//! Run: `cargo run --release -p ici-bench --bin e4_bootstrap [--paper]`

use ici_baselines::analytic::bootstrap as analytic_bootstrap;
use ici_baselines::analytic::LedgerShape;
use ici_baselines::full::FullConfig;
use ici_baselines::rapidchain::RapidChainConfig;
use ici_bench::{cluster_size, committee_size, emit, quiet_link, standard_workload, Scale};
use ici_chain::block::BlockHeader;
use ici_cluster::membership::JoinPolicy;
use ici_core::config::IciConfig;
use ici_net::topology::Coord;
use ici_sim::runner::{run_full, run_ici, run_rapidchain};
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Small => 256,
        Scale::Paper => 1_000,
    };
    let c = cluster_size(scale);
    let m = committee_size(scale);
    let txs = 40;
    let chain_lengths: Vec<usize> = match scale {
        Scale::Small => vec![10, 25, 50, 100],
        Scale::Paper => vec![50, 100, 200],
    };

    let mut measured = Table::new(
        format!("E4 (measured): bootstrap download vs chain length, N={n}, r=2"),
        [
            "chain blocks",
            "strategy",
            "bytes downloaded",
            "transfer time (ms)",
            "vs full (%)",
        ],
    );

    for &blocks in &chain_lengths {
        let workload = standard_workload(9);

        // Full replication joiner.
        let (mut full_net, _) = run_full(
            FullConfig {
                nodes: n,
                link: quiet_link(),
                seed: 9,
                ..FullConfig::default()
            },
            blocks,
            txs,
            workload,
        );
        let (full_bytes, full_time) = full_net.bootstrap_cost();

        // RapidChain joiner (assigned to shard 0).
        let shards = n.div_ceil(m);
        let (mut rapid_net, _) = run_rapidchain(
            RapidChainConfig {
                nodes: n,
                committee_size: m,
                link: quiet_link(),
                seed: 9,
                ..RapidChainConfig::default()
            },
            (blocks / shards).max(1),
            txs,
            workload,
        );
        let (rapid_bytes, rapid_time) = rapid_net.bootstrap_cost(0);

        // ICI joiner.
        let (mut ici_net, _) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(2)
                .link(quiet_link())
                .seed(9)
                .build()
                .expect("valid configuration"),
            blocks,
            txs,
            workload,
        );
        let report = ici_net
            .bootstrap_node(Coord::new(40.0, 40.0), JoinPolicy::NearestCentroid)
            .expect("join succeeds");

        for (name, bytes, time_ms) in [
            ("FullReplication", full_bytes, full_time.as_millis_f64()),
            ("RapidChain", rapid_bytes, rapid_time.as_millis_f64()),
            (
                "ICIStrategy",
                report.total_bytes(),
                report.duration.as_millis_f64(),
            ),
        ] {
            measured.row([
                blocks.to_string(),
                name.to_string(),
                format_bytes(bytes),
                format!("{time_ms:.1}"),
                format!("{:.1}%", 100.0 * bytes as f64 / full_bytes as f64),
            ]);
        }
    }

    // Analytic extrapolation to a mature chain.
    let shape = LedgerShape {
        blocks: 100_000,
        mean_body_bytes: 1_000_000,
    };
    let mut analytic = Table::new(
        "E4 (analytic): bootstrap bytes for a 100 GB ledger (100k x 1 MB)",
        ["strategy", "download", "vs full (%)"],
    );
    let full_b = analytic_bootstrap::full(shape);
    for (name, bytes) in [
        ("FullReplication", full_b),
        (
            "RapidChain (N=4000, committees of 250)",
            analytic_bootstrap::rapidchain(shape, 4_000, 250),
        ),
        (
            "ICIStrategy (c=64, r=1)",
            analytic_bootstrap::ici(shape, 64, 1),
        ),
    ] {
        analytic.row([
            name.to_string(),
            format_bytes(bytes as u64),
            format!("{:.2}%", 100.0 * bytes / full_b),
        ]);
    }
    let _ = BlockHeader::ENCODED_LEN; // referenced by the analytic model

    emit(
        "E4",
        "Bootstrap overhead vs chain length",
        &format!("scale={scale:?}, N={n}, c={c}, committee={m}, r=2"),
        &[&measured, &analytic],
    );
}
