//! **E10 (ablation) — epoch reconfiguration cost.**
//!
//! How expensive is it to re-cluster a live, drifted network? Nodes join
//! at biased positions (eroding the original clusters), then a
//! reconfiguration epoch runs: the table reports the migration volume,
//! the improvement in intra-cluster latency, and the commit-latency gain
//! that pays for the move — for each clustering algorithm.
//!
//! Run: `cargo run --release -p ici-bench --bin e10_reconfig [--paper]`

use ici_bench::{emit, quiet_link, standard_workload, Scale};
use ici_cluster::membership::JoinPolicy;
use ici_core::config::{Clustering, IciConfig};
use ici_net::topology::Coord;
use ici_sim::runner::run_ici;
use ici_sim::table::Table;
use ici_storage::stats::format_bytes;
use ici_workload::WorkloadGenerator;

fn median(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

fn main() {
    let scale = Scale::from_args();
    let n = match scale {
        Scale::Small => 128usize,
        Scale::Paper => 512,
    };
    let c = 16usize;
    let joins = 24usize;

    let mut table = Table::new(
        format!("E10: reconfiguration after {joins} drifting joins, N={n}+{joins}, c={c}"),
        [
            "clustering",
            "moved nodes",
            "bodies fetched",
            "bytes moved",
            "intra-dist before (ms)",
            "intra-dist after (ms)",
            "commit p50 before (ms)",
            "commit p50 after (ms)",
        ],
    );

    for (name, clustering) in [
        ("random", Clustering::Random),
        ("balanced k-means", Clustering::BalancedKMeans),
    ] {
        let (mut network, _) = run_ici(
            IciConfig::builder()
                .nodes(n)
                .cluster_size(c)
                .replication(2)
                .clustering(clustering)
                .link(quiet_link())
                .seed(41)
                .build()
                .expect("valid configuration"),
            10,
            30,
            standard_workload(41),
        );

        // Drift: a burst of joins concentrated in one corner of the
        // latency space (a new region coming online).
        for i in 0..joins {
            network
                .bootstrap_node(
                    Coord::new(150.0 + (i % 5) as f64, 150.0 + (i / 5) as f64),
                    JoinPolicy::SmallestCluster,
                )
                .expect("join succeeds");
        }

        // Post-join, pre-reconfiguration baseline: the drifted network's
        // own commit latency, so the comparison isolates reconfiguration.
        let mut generator = WorkloadGenerator::new(standard_workload(42));
        let log_mark = network.commit_log().len();
        for _ in 0..8 {
            network
                .propose_block(generator.batch(30))
                .expect("commits before reconfig");
        }
        let commit_before = median(
            network.commit_log()[log_mark..]
                .iter()
                .map(|r| r.commit_latency().as_millis_f64())
                .collect(),
        );
        let topology = network.net().topology().clone();
        let dist_before = network
            .membership()
            .partition()
            .mean_intra_cluster_distance(&topology);

        let report = network.reconfigure_clusters();
        let dist_after = network
            .membership()
            .partition()
            .mean_intra_cluster_distance(&topology);

        // Commit a few more blocks to measure post-reconfig latency.
        let log_before = network.commit_log().len();
        for _ in 0..8 {
            network
                .propose_block(generator.batch(30))
                .expect("commits after reconfig");
        }
        let commit_after = median(
            network.commit_log()[log_before..]
                .iter()
                .map(|r| r.commit_latency().as_millis_f64())
                .collect(),
        );

        table.row([
            name.to_string(),
            report.moved_nodes.to_string(),
            report.bodies_fetched.to_string(),
            format_bytes(report.bytes_moved),
            format!("{dist_before:.2}"),
            format!("{dist_after:.2}"),
            format!("{commit_before:.1}"),
            format!("{commit_after:.1}"),
        ]);

        // Invariant: integrity survives reconfiguration.
        assert!(network.audit_all().iter().all(|rep| rep.is_intact()));
    }

    emit(
        "E10",
        "Ablation: epoch reconfiguration cost and benefit",
        &format!("scale={scale:?}, N={n}, c={c}, joins={joins}"),
        &[&table],
    );
}
