//! A tiny std-only micro-benchmark harness.
//!
//! Replaces the former `criterion` dev-dependency so `cargo bench`
//! works in fully offline builds. It is intentionally simple: warm up,
//! run a fixed wall-clock budget of timed iterations, report min /
//! median / mean. Good enough to bound cost-model constants and to spot
//! order-of-magnitude regressions; it does not attempt criterion-grade
//! statistics.
//!
//! Environment knobs:
//!
//! * `ICI_BENCH_BUDGET_MS` — per-benchmark time budget (default 300 ms).
//! * `ICI_BENCH_MIN_ITERS` — minimum timed iterations (default 10).

use std::time::{Duration, Instant};

/// Runs one benchmark and prints a result line.
///
/// `setup` builds fresh input for every timed iteration (its cost is
/// excluded); `routine` consumes it and returns a value that is dropped
/// outside the timed region.
pub fn bench_with_setup<S, R, I, O>(name: &str, mut setup: S, mut routine: R)
where
    S: FnMut() -> I,
    R: FnMut(I) -> O,
{
    let budget = Duration::from_millis(env_u64("ICI_BENCH_BUDGET_MS", 300));
    let min_iters = env_u64("ICI_BENCH_MIN_ITERS", 10) as usize;

    // Warm-up: one untimed pass.
    let warm_input = setup();
    let _ = routine(warm_input);

    let mut samples_ns: Vec<u128> = Vec::new();
    let started = Instant::now();
    while samples_ns.len() < min_iters || started.elapsed() < budget {
        let input = setup();
        let t0 = Instant::now();
        let out = routine(input);
        let elapsed = t0.elapsed();
        drop(out);
        samples_ns.push(elapsed.as_nanos());
        if samples_ns.len() >= 1_000_000 {
            break; // safety valve for sub-microsecond routines
        }
    }
    report(name, &mut samples_ns);
}

/// Runs one benchmark with no per-iteration setup.
pub fn bench<R, O>(name: &str, mut routine: R)
where
    R: FnMut() -> O,
{
    bench_with_setup(name, || (), |()| routine());
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn report(name: &str, samples_ns: &mut [u128]) {
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    if n == 0 {
        println!("{name:<44} no samples");
        return;
    }
    let min = samples_ns[0];
    let median = samples_ns[n / 2];
    let mean = samples_ns.iter().sum::<u128>() / n as u128;
    println!(
        "{name:<44} min {:>12}  median {:>12}  mean {:>12}  ({n} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("ICI_BENCH_BUDGET_MS", "5");
        bench("harness/self_test", || 1 + 1);
        std::env::remove_var("ICI_BENCH_BUDGET_MS");
    }

    #[test]
    fn formatting_covers_all_magnitudes() {
        assert!(fmt_ns(12).contains("ns"));
        assert!(fmt_ns(12_345).contains("µs"));
        assert!(fmt_ns(12_345_678).contains("ms"));
        assert!(fmt_ns(12_345_678_901).contains("s"));
    }
}
