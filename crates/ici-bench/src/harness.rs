//! A tiny std-only micro-benchmark harness.
//!
//! Replaces the former `criterion` dev-dependency so `cargo bench`
//! works in fully offline builds. It is intentionally simple: warm up,
//! run a fixed wall-clock budget of timed iterations, report min /
//! median / mean. Good enough to bound cost-model constants and to spot
//! order-of-magnitude regressions; it does not attempt criterion-grade
//! statistics.
//!
//! Environment knobs:
//!
//! * `ICI_BENCH_BUDGET_MS` — per-benchmark time budget (default 300 ms).
//! * `ICI_BENCH_MIN_ITERS` — minimum timed iterations (default 10).
//! * `ICI_BENCH_JSON=1` — emit one machine-readable JSON line per
//!   benchmark instead of the aligned text line.

use std::time::{Duration, Instant};

/// Runs one benchmark and prints a result line.
///
/// `setup` builds fresh input for every timed iteration (its cost is
/// excluded); `routine` consumes it and returns a value that is dropped
/// outside the timed region.
pub fn bench_with_setup<S, R, I, O>(name: &str, mut setup: S, mut routine: R)
where
    S: FnMut() -> I,
    R: FnMut(I) -> O,
{
    let budget = Duration::from_millis(env_u64("ICI_BENCH_BUDGET_MS", 300));
    let min_iters = env_u64("ICI_BENCH_MIN_ITERS", 10) as usize;

    // Warm-up: one untimed pass.
    let warm_input = setup();
    let _ = routine(warm_input);

    let mut samples_ns: Vec<u128> = Vec::new();
    let started = Instant::now(); // lint:allow(wall-clock) -- bench budget clock, reporting only
    while samples_ns.len() < min_iters || started.elapsed() < budget {
        let input = setup();
        let t0 = Instant::now(); // lint:allow(wall-clock) -- the measurement itself
        let out = routine(input);
        let elapsed = t0.elapsed();
        drop(out);
        samples_ns.push(elapsed.as_nanos());
        if samples_ns.len() >= 1_000_000 {
            break; // safety valve for sub-microsecond routines
        }
    }
    report(name, &mut samples_ns);
}

/// Runs one benchmark with no per-iteration setup.
pub fn bench<R, O>(name: &str, mut routine: R)
where
    R: FnMut() -> O,
{
    bench_with_setup(name, || (), |()| routine());
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Summary statistics of one benchmark's timed samples, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchStats {
    /// Timed iterations.
    pub iters: usize,
    /// Fastest sample.
    pub min_ns: u128,
    /// Middle sample.
    pub median_ns: u128,
    /// Mean sample.
    pub mean_ns: u128,
    /// 90th-percentile sample (nearest-rank).
    pub p90_ns: u128,
    /// 99th-percentile sample (nearest-rank).
    pub p99_ns: u128,
}

/// Computes summary statistics over (sorted-in-place) samples. Returns
/// `None` for an empty slice.
pub fn stats(samples_ns: &mut [u128]) -> Option<BenchStats> {
    samples_ns.sort_unstable();
    let n = samples_ns.len();
    if n == 0 {
        return None;
    }
    let rank = |p: f64| -> u128 {
        let idx = ((p / 100.0) * n as f64).ceil() as usize;
        samples_ns[idx.clamp(1, n) - 1]
    };
    Some(BenchStats {
        iters: n,
        min_ns: samples_ns[0],
        median_ns: samples_ns[n / 2],
        mean_ns: samples_ns.iter().sum::<u128>() / n as u128,
        p90_ns: rank(90.0),
        p99_ns: rank(99.0),
    })
}

fn report(name: &str, samples_ns: &mut [u128]) {
    let Some(s) = stats(samples_ns) else {
        println!("{name:<44} no samples");
        return;
    };
    if std::env::var("ICI_BENCH_JSON")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        println!(
            "{{\"name\": \"{name}\", \"iters\": {}, \"min_ns\": {}, \"median_ns\": {}, \
             \"mean_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}}}",
            s.iters, s.min_ns, s.median_ns, s.mean_ns, s.p90_ns, s.p99_ns,
        );
        return;
    }
    println!(
        "{name:<44} min {:>11}  median {:>11}  mean {:>11}  p90 {:>11}  p99 {:>11}  ({} iters)",
        fmt_ns(s.min_ns),
        fmt_ns(s.median_ns),
        fmt_ns(s.mean_ns),
        fmt_ns(s.p90_ns),
        fmt_ns(s.p99_ns),
        s.iters,
    );
}

/// Renders a nanosecond quantity with a human-scale unit.
pub fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        std::env::set_var("ICI_BENCH_BUDGET_MS", "5");
        bench("harness/self_test", || 1 + 1);
        std::env::remove_var("ICI_BENCH_BUDGET_MS");
    }

    #[test]
    fn formatting_covers_all_magnitudes() {
        assert!(fmt_ns(12).contains("ns"));
        assert!(fmt_ns(12_345).contains("µs"));
        assert!(fmt_ns(12_345_678).contains("ms"));
        assert!(fmt_ns(12_345_678_901).contains("s"));
    }

    #[test]
    fn stats_percentiles_use_nearest_rank() {
        let mut samples: Vec<u128> = (1..=100).collect();
        let s = stats(&mut samples).expect("non-empty");
        assert_eq!(s.iters, 100);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.mean_ns, 50);
    }

    #[test]
    fn stats_single_sample_is_every_quantile() {
        let mut samples = vec![42u128];
        let s = stats(&mut samples).expect("non-empty");
        assert_eq!(s.min_ns, 42);
        assert_eq!(s.median_ns, 42);
        assert_eq!(s.p90_ns, 42);
        assert_eq!(s.p99_ns, 42);
    }

    #[test]
    fn stats_empty_is_none() {
        assert!(stats(&mut []).is_none());
    }
}
