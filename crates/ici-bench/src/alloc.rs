//! Opt-in allocation accounting for the experiment binaries.
//!
//! Linking `ici-bench` installs [`CountingAlloc`] as the process global
//! allocator: a zero-configuration wrapper around [`System`] that
//! counts every allocation and requested byte in relaxed atomics, and
//! additionally tracks the live heap (allocated minus freed) with a
//! peak high-water mark — the number the e_scale memory ceiling gates
//! on. The counters always run (a few uncontended atomic ops per
//! allocation); *reporting* is opt-in via `ICI_ALLOC_STATS=1`, which
//! makes [`crate::emit`] print a machine-readable `ALLOC_STATS` line
//! after the tables. The line goes to stdout only — it never enters the
//! archived `results/*.json`, so committed experiment records stay
//! byte-identical whether or not accounting is enabled.
//!
//! This is the one file in the workspace allowed to use `unsafe`:
//! implementing [`GlobalAlloc`] is impossible without it, and the
//! wrapper adds no invariants of its own — every call forwards verbatim
//! to [`System`]. The carve-out is explicit in `lint.toml`
//! (`unsafe_files`), and the crate root still carries
//! `#![deny(unsafe_code)]` so nothing outside this file can follow.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Currently live (allocated minus freed) bytes.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
/// High-water mark of [`LIVE_BYTES`].
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

/// Records `size` freshly allocated bytes and advances the peak.
///
/// The load/fetch_max pair is not atomic as a unit, but any interleaved
/// concurrent update only ever *raises* the peak, so the mark never
/// understates a level the process actually reached.
fn record_alloc(size: u64) {
    ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(size, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// [`System`] wrapper that counts allocations and requested bytes.
///
/// `dealloc` does not reduce `count`/`bytes` — the cumulative signal
/// for the zero-copy work is how much the process *asks for* — but it
/// does reduce the live-byte gauge feeding the peak high-water mark.
/// `realloc` counts as one allocation of the new size (the common grow
/// path allocates-and-copies under the hood) and adjusts the live gauge
/// by the size delta.
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the atomics touch no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size() as u64);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record_alloc(layout.size() as u64);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        let old = layout.size() as u64;
        let new = new_size as u64;
        let live = if new >= old {
            LIVE_BYTES.fetch_add(new - old, Ordering::Relaxed) + (new - old)
        } else {
            LIVE_BYTES.fetch_sub(old - new, Ordering::Relaxed) - (old - new)
        };
        PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A snapshot of the process-wide allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations since process start (alloc + alloc_zeroed + realloc).
    pub count: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
    /// Bytes currently live (allocated minus freed).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes` since process start.
    pub peak_live_bytes: u64,
}

/// Reads the counters. `count`/`bytes`/`peak_live_bytes` are monotonic
/// within a process and never reset; `live_bytes` is a gauge.
pub fn stats() -> AllocStats {
    AllocStats {
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether `ICI_ALLOC_STATS=1` is set for this process.
pub fn enabled() -> bool {
    std::env::var("ICI_ALLOC_STATS").is_ok_and(|v| v == "1")
}

/// Prints the `ALLOC_STATS` line for experiment `id` when enabled.
///
/// Format (one line, stdout):
/// `ALLOC_STATS id=<id> count=<n> bytes=<n> live=<n> peak_live=<n>`.
/// `scripts/ci.sh` parses this into `results/BENCH_alloc.json` and
/// `results/BENCH_scale.json`; the two historical fields keep their
/// positions so older parsers stay compatible.
pub fn report(id: &str) {
    if !enabled() {
        return;
    }
    let s = stats();
    println!(
        "ALLOC_STATS id={id} count={} bytes={} live={} peak_live={}",
        s.count, s.bytes, s.live_bytes, s.peak_live_bytes
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_heap_traffic() {
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let after = stats();
        drop(v);
        assert!(after.count > before.count, "allocation was not counted");
        assert!(
            after.bytes - before.bytes >= 8 * 1024,
            "byte counter missed the 8 KiB buffer: {} -> {}",
            before.bytes,
            after.bytes
        );
    }

    #[test]
    fn stats_are_monotonic() {
        let a = stats();
        let _touch = vec![0u8; 64];
        let b = stats();
        assert!(b.count >= a.count && b.bytes >= a.bytes);
        assert!(b.peak_live_bytes >= a.peak_live_bytes);
    }

    #[test]
    fn peak_live_tracks_high_water_not_current() {
        let before = stats();
        {
            // A buffer well above test noise raises the peak...
            let _big = vec![0u8; 4 << 20];
            let held = stats();
            assert!(held.live_bytes >= before.live_bytes + (4 << 20));
        }
        // ...and the peak survives the free while the gauge drops.
        let after = stats();
        assert!(after.peak_live_bytes >= before.live_bytes + (4 << 20));
        assert!(after.live_bytes < after.peak_live_bytes);
    }
}
