//! Opt-in allocation accounting for the experiment binaries.
//!
//! Linking `ici-bench` installs [`CountingAlloc`] as the process global
//! allocator: a zero-configuration wrapper around [`System`] that
//! counts every allocation and requested byte in two relaxed atomics.
//! The counters always run (two uncontended atomic adds per
//! allocation); *reporting* is opt-in via `ICI_ALLOC_STATS=1`, which
//! makes [`crate::emit`] print a machine-readable `ALLOC_STATS` line
//! after the tables. The line goes to stdout only — it never enters the
//! archived `results/*.json`, so committed experiment records stay
//! byte-identical whether or not accounting is enabled.
//!
//! This is the one file in the workspace allowed to use `unsafe`:
//! implementing [`GlobalAlloc`] is impossible without it, and the
//! wrapper adds no invariants of its own — every call forwards verbatim
//! to [`System`]. The carve-out is explicit in `lint.toml`
//! (`unsafe_files`), and the crate root still carries
//! `#![deny(unsafe_code)]` so nothing outside this file can follow.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] wrapper that counts allocations and requested bytes.
///
/// `dealloc` is deliberately uncounted: the interesting signal for the
/// zero-copy work is how much the process *asks for*, not its live set.
/// `realloc` counts as one allocation of the new size (the common grow
/// path allocates-and-copies under the hood).
pub struct CountingAlloc;

// SAFETY: pure pass-through to `System`; the atomics touch no
// allocator state.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A snapshot of the process-wide allocation counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations since process start (alloc + alloc_zeroed + realloc).
    pub count: u64,
    /// Bytes requested across those allocations.
    pub bytes: u64,
}

/// Reads the counters. Monotonic within a process; never reset.
pub fn stats() -> AllocStats {
    AllocStats {
        count: ALLOC_COUNT.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// Whether `ICI_ALLOC_STATS=1` is set for this process.
pub fn enabled() -> bool {
    std::env::var("ICI_ALLOC_STATS").is_ok_and(|v| v == "1")
}

/// Prints the `ALLOC_STATS` line for experiment `id` when enabled.
///
/// Format (one line, stdout): `ALLOC_STATS id=<id> count=<n> bytes=<n>`.
/// `scripts/ci.sh` parses this into `results/BENCH_alloc.json`.
pub fn report(id: &str) {
    if !enabled() {
        return;
    }
    let s = stats();
    println!("ALLOC_STATS id={id} count={} bytes={}", s.count, s.bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_heap_traffic() {
        let before = stats();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let after = stats();
        drop(v);
        assert!(after.count > before.count, "allocation was not counted");
        assert!(
            after.bytes - before.bytes >= 8 * 1024,
            "byte counter missed the 8 KiB buffer: {} -> {}",
            before.bytes,
            after.bytes
        );
    }

    #[test]
    fn stats_are_monotonic() {
        let a = stats();
        let _touch = vec![0u8; 64];
        let b = stats();
        assert!(b.count >= a.count && b.bytes >= a.bytes);
    }
}
