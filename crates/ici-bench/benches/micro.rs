//! Criterion micro-benchmarks over the substrates: hashing, MACs, Merkle
//! trees, erasure coding, assignment, codec, and clustering. These bound
//! the cost-model constants used by the simulator and expose regressions
//! in the hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ici_chain::codec::{Decode, Encode};
use ici_chain::transaction::{Address, Transaction};
use ici_cluster::kmeans::{balanced_kmeans, KMeansConfig};
use ici_crypto::gf256::Gf256;
use ici_crypto::hmac::hmac_sha256;
use ici_crypto::merkle::MerkleTree;
use ici_crypto::rs::ReedSolomon;
use ici_crypto::sha256::Sha256;
use ici_crypto::sig::Keypair;
use ici_net::node::NodeId;
use ici_net::topology::{Placement, Topology};
use ici_storage::assignment::{
    AssignmentStrategy, RendezvousAssignment, RingAssignment, RoundRobinAssignment,
};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0x3Cu8; 1_024];
    c.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(b"bench key", &data));
    });
}

fn bench_simsig(c: &mut Criterion) {
    let pair = Keypair::from_seed(1);
    let msg = vec![0u8; 200];
    let sig = pair.sign(&msg);
    c.bench_function("simsig/sign", |b| b.iter(|| pair.sign(&msg)));
    c.bench_function("simsig/verify", |b| {
        b.iter(|| pair.public().verify(&msg, &sig))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [64usize, 1_024] {
        let data: Vec<Vec<u8>> = (0..leaves).map(|i| vec![i as u8; 64]).collect();
        group.bench_with_input(
            BenchmarkId::new("build", leaves),
            &data,
            |b, data| {
                b.iter(|| MerkleTree::from_leaves(data.iter().map(|v| v.as_slice())));
            },
        );
        let tree = MerkleTree::from_leaves(data.iter().map(|v| v.as_slice()));
        group.bench_with_input(BenchmarkId::new("prove", leaves), &tree, |b, tree| {
            b.iter(|| tree.prove(leaves / 2).expect("in range"));
        });
        let proof = tree.prove(leaves / 2).expect("in range");
        group.bench_with_input(
            BenchmarkId::new("verify", leaves),
            &proof,
            |b, proof| {
                b.iter(|| proof.verify(&data[leaves / 2], tree.root()));
            },
        );
    }
    group.finish();
}

fn bench_reed_solomon(c: &mut Criterion) {
    let mut group = c.benchmark_group("reed_solomon");
    let rs = ReedSolomon::new(16, 8).expect("valid geometry");
    let payload = vec![0x5Au8; 1 << 20]; // 1 MiB block body
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("encode/1MiB_16+8", |b| {
        b.iter(|| rs.encode_payload(&payload));
    });
    let shards = rs.encode_payload(&payload);
    group.bench_function("reconstruct/1MiB_8_erasures", |b| {
        b.iter(|| {
            let mut damaged: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            for i in [0, 3, 5, 7, 9, 16, 20, 23] {
                damaged[i] = None;
            }
            rs.reconstruct(&mut damaged).expect("within budget");
            damaged
        });
    });
    group.finish();
}

fn bench_gf256(c: &mut Criterion) {
    c.bench_function("gf256/mul_1M", |b| {
        b.iter(|| {
            let mut acc = Gf256(1);
            for i in 0..1_000_000u32 {
                acc = acc.mul(Gf256((i % 255 + 1) as u8));
            }
            acc
        });
    });
}

fn bench_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("assignment");
    let members: Vec<NodeId> = (0..64).map(NodeId::new).collect();
    let id = Sha256::digest(b"block");
    group.bench_function("rendezvous/c64_r2", |b| {
        b.iter(|| RendezvousAssignment.owners(&id, 7, &members, 2));
    });
    group.bench_function("ring/c64_r2", |b| {
        b.iter(|| RingAssignment::default().owners(&id, 7, &members, 2));
    });
    group.bench_function("round_robin/c64_r2", |b| {
        b.iter(|| RoundRobinAssignment.owners(&id, 7, &members, 2));
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let tx = Transaction::signed(
        &Keypair::from_seed(1),
        Address::from_seed(2),
        100,
        1,
        0,
        vec![0u8; 200],
    );
    let bytes = tx.to_bytes();
    c.bench_function("codec/tx_encode", |b| b.iter(|| tx.to_bytes()));
    c.bench_function("codec/tx_decode", |b| {
        b.iter(|| Transaction::from_bytes(&bytes).expect("valid"));
    });
}

fn bench_clustering(c: &mut Criterion) {
    let topo = Topology::generate(512, &Placement::default(), 3);
    c.bench_function("clustering/balanced_kmeans_512_k16", |b| {
        b.iter(|| balanced_kmeans(&topo, &KMeansConfig::with_k(16, 3)));
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_simsig,
    bench_merkle,
    bench_reed_solomon,
    bench_gf256,
    bench_assignment,
    bench_codec,
    bench_clustering,
);
criterion_main!(benches);
