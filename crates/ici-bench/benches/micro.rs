//! Micro-benchmarks over the substrates: hashing, MACs, Merkle trees,
//! erasure coding, assignment, codec, and clustering. These bound the
//! cost-model constants used by the simulator and expose regressions in
//! the hot paths.
//!
//! Runs on the in-repo std-only harness (`ici_bench::harness`) so
//! `cargo bench` needs no external dependencies. Tune with
//! `ICI_BENCH_BUDGET_MS`.

use ici_bench::harness::{bench, bench_with_setup};
use ici_chain::codec::{Decode, Encode};
use ici_chain::transaction::{Address, Transaction};
use ici_cluster::kmeans::{balanced_kmeans, KMeansConfig};
use ici_crypto::gf256::Gf256;
use ici_crypto::hmac::hmac_sha256;
use ici_crypto::merkle::MerkleTree;
use ici_crypto::rs::ReedSolomon;
use ici_crypto::sha256::Sha256;
use ici_crypto::sig::Keypair;
use ici_net::node::NodeId;
use ici_net::topology::{Placement, Topology};
use ici_storage::assignment::{
    AssignmentStrategy, RendezvousAssignment, RingAssignment, RoundRobinAssignment,
};

fn bench_sha256() {
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xA5u8; size];
        bench(&format!("sha256/{size}B"), || Sha256::digest(&data));
    }
}

fn bench_hmac() {
    let data = vec![0x3Cu8; 1_024];
    bench("hmac_sha256/1KiB", || hmac_sha256(b"bench key", &data));
}

fn bench_simsig() {
    let pair = Keypair::from_seed(1);
    let msg = vec![0u8; 200];
    let sig = pair.sign(&msg);
    bench("simsig/sign", || pair.sign(&msg));
    bench("simsig/verify", || pair.public().verify(&msg, &sig));
}

fn bench_merkle() {
    for leaves in [64usize, 1_024] {
        let data: Vec<Vec<u8>> = (0..leaves).map(|i| vec![i as u8; 64]).collect();
        bench(&format!("merkle/build/{leaves}"), || {
            MerkleTree::from_leaves(data.iter().map(|v| v.as_slice()))
        });
        let tree = MerkleTree::from_leaves(data.iter().map(|v| v.as_slice()));
        bench(&format!("merkle/prove/{leaves}"), || {
            tree.prove(leaves / 2).expect("in range")
        });
        let proof = tree.prove(leaves / 2).expect("in range");
        bench(&format!("merkle/verify/{leaves}"), || {
            proof.verify(&data[leaves / 2], tree.root())
        });
    }
}

fn bench_reed_solomon() {
    let rs = ReedSolomon::new(16, 8).expect("valid geometry");
    let payload = vec![0x5Au8; 1 << 20]; // 1 MiB block body
    bench("reed_solomon/encode/1MiB_16+8", || {
        rs.encode_payload(&payload)
    });
    let shards = rs.encode_payload(&payload);
    bench("reed_solomon/reconstruct/1MiB_8_erasures", || {
        let mut damaged: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
        for i in [0, 3, 5, 7, 9, 16, 20, 23] {
            damaged[i] = None;
        }
        rs.reconstruct(&mut damaged).expect("within budget");
        damaged
    });
}

fn bench_gf256() {
    bench("gf256/mul_1M", || {
        let mut acc = Gf256(1);
        for i in 0..1_000_000u32 {
            acc = acc.mul(Gf256((i % 255 + 1) as u8));
        }
        acc
    });
}

fn bench_assignment() {
    let members: Vec<NodeId> = (0..64).map(NodeId::new).collect();
    let id = Sha256::digest(b"block");
    bench("assignment/rendezvous/c64_r2", || {
        RendezvousAssignment.owners(&id, 7, &members, 2)
    });
    bench("assignment/ring/c64_r2", || {
        RingAssignment::default().owners(&id, 7, &members, 2)
    });
    bench("assignment/round_robin/c64_r2", || {
        RoundRobinAssignment.owners(&id, 7, &members, 2)
    });
}

fn bench_codec() {
    let tx = Transaction::signed(
        &Keypair::from_seed(1),
        Address::from_seed(2),
        100,
        1,
        0,
        vec![0u8; 200],
    );
    let bytes = tx.to_bytes();
    bench("codec/tx_encode", || tx.to_bytes());
    bench("codec/tx_decode", || {
        Transaction::from_bytes(&bytes).expect("valid")
    });
}

fn bench_clustering() {
    let topo = Topology::generate(512, &Placement::default(), 3);
    bench_with_setup(
        "clustering/balanced_kmeans_512_k16",
        || (),
        |()| balanced_kmeans(&topo, &KMeansConfig::with_k(16, 3)),
    );
}

fn main() {
    bench_sha256();
    bench_hmac();
    bench_simsig();
    bench_merkle();
    bench_reed_solomon();
    bench_gf256();
    bench_assignment();
    bench_codec();
    bench_clustering();
}
