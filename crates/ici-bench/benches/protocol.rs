//! Benchmarks over protocol rounds: one per experiment family, so
//! `cargo bench` exercises the code paths that regenerate every table
//! and figure (the full sweeps live in the `e*` binaries).
//!
//! Runs on the in-repo std-only harness (`ici_bench::harness`) so
//! `cargo bench` needs no external dependencies.

use ici_baselines::full::{FullConfig, FullReplicationNetwork};
use ici_baselines::rapidchain::{RapidChainConfig, RapidChainNetwork};
use ici_bench::harness::bench_with_setup;
use ici_chain::transaction::{Address, Transaction};
use ici_cluster::membership::JoinPolicy;
use ici_consensus::gossip::{gossip_flood, GossipConfig};
use ici_consensus::ida::{run_ida_dissemination, IdaConfig};
use ici_consensus::pbft::{run_pbft_commit, PbftInputs};
use ici_core::config::IciConfig;
use ici_core::network::IciNetwork;
use ici_crypto::sig::Keypair;
use ici_net::link::LinkModel;
use ici_net::metrics::MessageKind;
use ici_net::network::Network;
use ici_net::node::NodeId;
use ici_net::time::{Duration, SimTime};
use ici_net::topology::{Coord, Placement, Topology};
use ici_workload::{WorkloadConfig, WorkloadGenerator};

fn quiet_link() -> LinkModel {
    LinkModel {
        max_jitter_ms: 0.0,
        ..LinkModel::default()
    }
}

fn fresh_network(n: usize) -> Network {
    Network::new(
        Topology::generate(n, &Placement::default(), 9),
        quiet_link(),
    )
}

fn txs(n: u64, nonce: u64) -> Vec<Transaction> {
    (0..n)
        .map(|i| {
            Transaction::signed(
                &Keypair::from_seed(i),
                Address::from_seed(i + 1),
                1,
                1,
                nonce,
                vec![0u8; 200],
            )
        })
        .collect()
}

fn ici_network(nodes: usize, c: usize) -> IciNetwork {
    IciNetwork::new(
        IciConfig::builder()
            .nodes(nodes)
            .cluster_size(c)
            .replication(2)
            .link(quiet_link())
            .genesis(ici_chain::genesis::GenesisConfig::uniform(
                64,
                u64::MAX / 1_000_000,
            ))
            .seed(9)
            .build()
            .expect("valid configuration"),
    )
    .expect("constructs")
}

/// E1/E2/E7 code path: one full ICI block lifecycle.
fn bench_ici_block() {
    for (nodes, cluster) in [(64usize, 16usize), (128, 16)] {
        bench_with_setup(
            &format!("ici_block_lifecycle/n{nodes}_c{cluster}"),
            || (ici_network(nodes, cluster), txs(20, 0)),
            |(mut network, batch)| {
                network.propose_block(batch).expect("commits");
                network
            },
        );
    }
}

/// E3/E5 code path: one intra-cluster PBFT commit.
fn bench_pbft() {
    for size in [16usize, 64] {
        let members: Vec<NodeId> = (0..size as u64).map(NodeId::new).collect();
        bench_with_setup(
            &format!("pbft_commit/{size}"),
            || fresh_network(size),
            |mut net| {
                run_pbft_commit(
                    &mut net,
                    PbftInputs {
                        members: &members,
                        leader: NodeId::new(0),
                        start: SimTime::ZERO,
                        payload: |_| (MessageKind::BlockFull, 100_000),
                        validation: |_| Duration::from_millis(1),
                    },
                )
            },
        );
    }
}

/// Full-replication baseline (E1/E3/E7): one flood commit.
fn bench_full_block() {
    bench_with_setup(
        "full_replication_block/n256",
        || {
            (
                FullReplicationNetwork::new(FullConfig {
                    nodes: 256,
                    link: quiet_link(),
                    genesis: ici_chain::genesis::GenesisConfig::uniform(64, u64::MAX / 1_000_000),
                    seed: 9,
                    ..FullConfig::default()
                }),
                txs(20, 0),
            )
        },
        |(mut network, batch)| {
            network.propose_block(batch).expect("commits");
            network
        },
    );
}

/// RapidChain baseline (E1/E3/E7): one shard commit with IDA + votes.
fn bench_rapidchain_block() {
    bench_with_setup(
        "rapidchain_block/n256_committee64",
        || {
            (
                RapidChainNetwork::new(RapidChainConfig {
                    nodes: 256,
                    committee_size: 64,
                    link: quiet_link(),
                    genesis: ici_chain::genesis::GenesisConfig::uniform(64, u64::MAX / 1_000_000),
                    seed: 9,
                    ..RapidChainConfig::default()
                }),
                txs(20, 0),
            )
        },
        |(mut network, batch)| {
            network.propose_block(0, batch).expect("commits");
            network
        },
    );
}

/// E3 transport primitives: flood vs IDA.
fn bench_dissemination() {
    let peers: Vec<NodeId> = (0..128).map(NodeId::new).collect();
    bench_with_setup(
        "dissemination/gossip_flood_n128",
        || fresh_network(128),
        |mut net| {
            gossip_flood(
                &mut net,
                &peers,
                NodeId::new(0),
                SimTime::ZERO,
                MessageKind::BlockFull,
                100_000,
                &GossipConfig::default(),
            )
        },
    );
    let committee: Vec<NodeId> = (0..64).map(NodeId::new).collect();
    bench_with_setup(
        "dissemination/ida_c64",
        || fresh_network(64),
        |mut net| {
            run_ida_dissemination(
                &mut net,
                &committee,
                NodeId::new(0),
                SimTime::ZERO,
                100_000,
                &IdaConfig::default(),
            )
        },
    );
}

/// E4 code path: node bootstrap over an existing chain.
fn bench_bootstrap() {
    bench_with_setup(
        "bootstrap/ici_join_n64_20blocks",
        || {
            let mut network = ici_network(64, 16);
            let mut generator = WorkloadGenerator::new(WorkloadConfig {
                accounts: 64,
                ..WorkloadConfig::default()
            });
            for _ in 0..20 {
                let batch = generator.batch(10);
                network.propose_block(batch).expect("commits");
            }
            network
        },
        |mut network| {
            network
                .bootstrap_node(Coord::new(30.0, 30.0), JoinPolicy::NearestCentroid)
                .expect("joins")
        },
    );
}

/// E6 code path: audit + repair after a crash.
fn bench_repair() {
    bench_with_setup(
        "repair/crash2_repair_n64",
        || {
            let mut network = ici_network(64, 16);
            let mut generator = WorkloadGenerator::new(WorkloadConfig {
                accounts: 64,
                ..WorkloadConfig::default()
            });
            for _ in 0..10 {
                let batch = generator.batch(10);
                network.propose_block(batch).expect("commits");
            }
            network.crash_node(NodeId::new(1)).expect("known");
            network.crash_node(NodeId::new(2)).expect("known");
            network
        },
        |mut network| {
            network.repair_all();
            network
        },
    );
}

fn main() {
    bench_ici_block();
    bench_pbft();
    bench_full_block();
    bench_rapidchain_block();
    bench_dissemination();
    bench_bootstrap();
    bench_repair();
}
