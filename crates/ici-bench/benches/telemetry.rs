//! Telemetry overhead micro-bench.
//!
//! Quantifies the requirement that with telemetry *disabled*,
//! instrumentation is near-free. Three readings matter:
//!
//! 1. `harness/empty_floor` — the cost of benchmarking an empty closure;
//!    everything else is read relative to this floor.
//! 2. `telemetry/span_disabled` and `telemetry/counter_disabled` — the
//!    disabled-path primitives. These sit *at* the floor: the real cost
//!    is one relaxed atomic load plus a not-taken branch, with the
//!    recording body `#[cold]`-outlined out of the caller.
//! 3. `pbft_round/telemetry_off` vs `telemetry_on` — a full PBFT commit
//!    round (16 members). The round executes only a handful of disabled
//!    checks (spans and counters; per-send traffic mirroring is batched
//!    into `TrafficMeter::publish_telemetry` at end of run precisely to
//!    keep the send path clean), so the disabled overhead is tens of
//!    nanoseconds on a ~30 µs round — well under the 2% budget. Note
//!    that comparing the disabled round against a *separately compiled*
//!    uninstrumented binary is dominated by code-layout noise (±5% was
//!    observed between builds whose measured path was byte-identical);
//!    the primitive floors above are the meaningful measurement.

use ici_bench::harness::bench;
use ici_consensus::pbft::{run_pbft_commit, PbftInputs};
use ici_net::link::LinkModel;
use ici_net::metrics::MessageKind;
use ici_net::network::Network;
use ici_net::node::NodeId;
use ici_net::time::{Duration, SimTime};
use ici_net::topology::{Placement, Topology};

fn fresh_network(n: usize) -> Network {
    Network::new(
        Topology::generate(n, &Placement::default(), 9),
        LinkModel {
            max_jitter_ms: 0.0,
            ..LinkModel::default()
        },
    )
}

fn pbft_round(net: &mut Network, members: &[NodeId]) {
    let report = run_pbft_commit(
        net,
        PbftInputs {
            members,
            leader: NodeId::new(0),
            start: SimTime::ZERO,
            payload: |_| (MessageKind::BlockFull, 100_000),
            validation: |_| Duration::from_millis(2),
        },
    );
    assert!(report.is_committed());
}

fn main() {
    println!("== measurement floor ==");
    bench("harness/empty_floor", || {});

    println!("\n== telemetry primitives (disabled path) ==");
    ici_telemetry::set_enabled(false);
    bench("telemetry/span_disabled", || {
        let _g = ici_telemetry::span!("bench/noop");
    });
    bench("telemetry/counter_disabled", || {
        ici_telemetry::counter_add("bench/noop", ici_telemetry::Label::Global, 1);
    });

    println!("\n== trace primitives (disabled path) ==");
    ici_trace::set_enabled(false);
    bench("trace/stage_disabled", || {
        ici_trace::stage("bench/noop", 0, 0, 0, None, None, 0, 1, 0);
    });
    bench("trace/send_gate_disabled", || {
        ici_trace::send("bench/noop", 0, 0, 0, 1, 0, 0, None, 1, 0);
    });

    println!("\n== trace primitives (enabled path) ==");
    ici_trace::set_enabled(true);
    ici_trace::reset();
    bench("trace/stage_enabled", || {
        ici_trace::stage("bench/noop", 0, 0, 0, None, None, 0, 1, 0);
    });
    ici_trace::set_enabled(false);
    ici_trace::reset();

    println!("\n== telemetry primitives (enabled path) ==");
    ici_telemetry::set_enabled(true);
    ici_telemetry::reset();
    bench("telemetry/span_enabled", || {
        let _g = ici_telemetry::span!("bench/noop");
    });
    bench("telemetry/counter_enabled", || {
        ici_telemetry::counter_add("bench/noop", ici_telemetry::Label::Global, 1);
    });

    println!("\n== pbft round, 16 members ==");
    let members: Vec<NodeId> = (0..16).map(NodeId::new).collect();

    ici_telemetry::set_enabled(false);
    ici_telemetry::reset();
    let mut net = fresh_network(16);
    bench("pbft_round/telemetry_off", || {
        net.reset_meter();
        pbft_round(&mut net, &members);
    });

    ici_telemetry::set_enabled(true);
    ici_telemetry::reset();
    let mut net = fresh_network(16);
    bench("pbft_round/telemetry_on", || {
        net.reset_meter();
        pbft_round(&mut net, &members);
    });
    ici_telemetry::set_enabled(false);
}
