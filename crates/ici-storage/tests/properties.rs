//! Property-based tests over assignment, auditing, and recovery planning.

use std::collections::BTreeSet;

use ici_crypto::sha256::Sha256;
use ici_net::node::NodeId;
use ici_storage::assignment::{
    AssignmentStrategy, RendezvousAssignment, RingAssignment, RoundRobinAssignment,
};
use ici_storage::audit::{audit_cluster, Holdings};
use ici_storage::recovery::{plan_recovery, BlockRef};
use proptest::prelude::*;

fn all_strategies() -> Vec<Box<dyn AssignmentStrategy>> {
    vec![
        Box::new(RendezvousAssignment),
        Box::new(RingAssignment::default()),
        Box::new(RoundRobinAssignment),
    ]
}

proptest! {
    /// Owner sets are always: distinct, members, of size min(r, c), and
    /// deterministic — for every strategy and any shape.
    #[test]
    fn owner_sets_are_well_formed(
        c in 1usize..40,
        r in 0usize..6,
        height in any::<u64>(),
        key in any::<u64>(),
    ) {
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let id = Sha256::digest(&key.to_be_bytes());
        for strategy in all_strategies() {
            let owners = strategy.owners(&id, height, &members, r);
            prop_assert_eq!(owners.len(), r.min(c), "{}", strategy.name());
            let set: BTreeSet<&NodeId> = owners.iter().collect();
            prop_assert_eq!(set.len(), owners.len(), "{} duplicated", strategy.name());
            for o in &owners {
                prop_assert!(members.contains(o), "{} non-member", strategy.name());
            }
            prop_assert_eq!(
                strategy.owners(&id, height, &members, r),
                owners,
                "{} non-deterministic",
                strategy.name()
            );
        }
    }

    /// Rendezvous assignment: removing a non-owner never changes a block's
    /// owner set (minimal disruption, exact form).
    #[test]
    fn rendezvous_ignores_non_owner_departures(
        c in 3usize..30,
        key in any::<u64>(),
        victim in any::<prop::sample::Index>(),
    ) {
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let id = Sha256::digest(&key.to_be_bytes());
        let r = 2.min(c);
        let owners = RendezvousAssignment.owners(&id, 0, &members, r);
        let gone = members[victim.index(c)];
        if owners.contains(&gone) {
            return Ok(()); // departure of an owner must change the set
        }
        let survivors: Vec<NodeId> = members.iter().copied().filter(|m| *m != gone).collect();
        prop_assert_eq!(RendezvousAssignment.owners(&id, 0, &survivors, r), owners);
    }

    /// Audit + plan + apply = audit clean: for any random holdings and
    /// any live subset, executing the recovery plan leaves no block
    /// under-replicated that had at least one live holder.
    #[test]
    fn recovery_plan_restores_replication(
        c in 4usize..16,
        chain in 1u64..40,
        dead in proptest::collection::vec(any::<prop::sample::Index>(), 0..4),
        seed in any::<u64>(),
    ) {
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let r = 2.min(c);
        let blocks: Vec<BlockRef> = (0..chain)
            .map(|h| BlockRef {
                id: Sha256::digest(&(h ^ seed).to_be_bytes()),
                height: h,
                body_bytes: 100,
            })
            .collect();
        // Initial holdings per the assignment.
        let mut holdings = Holdings::new();
        for b in &blocks {
            for owner in RendezvousAssignment.owners(&b.id, b.height, &members, r) {
                holdings.entry(owner).or_default().insert(b.height);
            }
        }
        let mut live: BTreeSet<NodeId> = members.iter().copied().collect();
        for pick in dead {
            live.remove(&members[pick.index(c)]);
        }
        if live.is_empty() {
            return Ok(());
        }

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, r);
        for t in &plan.transfers {
            prop_assert!(live.contains(&t.source));
            prop_assert!(live.contains(&t.destination));
            holdings.entry(t.destination).or_default().insert(t.height);
        }

        // Re-plan: nothing further to move.
        let again = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, r);
        prop_assert!(again.transfers.is_empty());

        // Every block with a live holder reaches min(r, live) replicas.
        let target = r.min(live.len());
        let report = audit_cluster(&holdings, &live, chain);
        for h in 0..chain {
            let was_recoverable = !plan.unrecoverable.contains(&h);
            if was_recoverable {
                let live_replicas = holdings
                    .iter()
                    .filter(|(n, hs)| live.contains(n) && hs.contains(&h))
                    .count();
                prop_assert!(
                    live_replicas >= target,
                    "height {h}: {live_replicas} < {target}"
                );
            }
        }
        // The audit agrees with the holder count.
        prop_assert_eq!(report.chain_len, chain);
    }

    /// Audit availability is exactly the fraction of heights with a live
    /// holder.
    #[test]
    fn audit_availability_matches_definition(
        chain in 1u64..60,
        entries in proptest::collection::vec((0u64..8, 0u64..60), 0..80),
        live_mask in 0u8..=255,
    ) {
        let mut holdings = Holdings::new();
        for (node, height) in entries {
            if height < chain {
                holdings.entry(NodeId::new(node)).or_default().insert(height);
            }
        }
        let live: BTreeSet<NodeId> = (0..8u64)
            .filter(|i| live_mask & (1 << i) != 0)
            .map(NodeId::new)
            .collect();
        let report = audit_cluster(&holdings, &live, chain);
        let covered = (0..chain)
            .filter(|h| {
                holdings
                    .iter()
                    .any(|(n, hs)| live.contains(n) && hs.contains(h))
            })
            .count() as f64;
        prop_assert!((report.availability() - covered / chain as f64).abs() < 1e-12);
        prop_assert_eq!(report.missing.len() as u64, chain - covered as u64);
    }
}
