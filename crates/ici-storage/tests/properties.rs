//! Randomized property tests over assignment, auditing, and recovery
//! planning.
//!
//! Ported from `proptest` to seeded, deterministic case loops over
//! [`ici_rng`]. Enable the `heavy-tests` feature for a deeper sweep.

use std::collections::BTreeSet;

use ici_crypto::sha256::Sha256;
use ici_net::node::NodeId;
use ici_rng::Xoshiro256;
use ici_storage::assignment::{
    AssignmentStrategy, RendezvousAssignment, RingAssignment, RoundRobinAssignment,
};
use ici_storage::audit::{audit_cluster, Holdings};
use ici_storage::recovery::{plan_recovery, BlockRef};

const CASES: usize = if cfg!(feature = "heavy-tests") {
    384
} else {
    48
};

fn all_strategies() -> Vec<Box<dyn AssignmentStrategy>> {
    vec![
        Box::new(RendezvousAssignment),
        Box::new(RingAssignment::default()),
        Box::new(RoundRobinAssignment),
    ]
}

/// Owner sets are always: distinct, members, of size min(r, c), and
/// deterministic — for every strategy and any shape.
#[test]
fn owner_sets_are_well_formed() {
    let mut rng = Xoshiro256::seed_from_u64(0xE1);
    for _ in 0..CASES {
        let c = rng.gen_range(1usize..40);
        let r = rng.gen_range(0usize..6);
        let height = rng.next_u64();
        let key = rng.next_u64();
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let id = Sha256::digest(&key.to_be_bytes());
        for strategy in all_strategies() {
            let owners = strategy.owners(&id, height, &members, r);
            assert_eq!(owners.len(), r.min(c), "{}", strategy.name());
            let set: BTreeSet<&NodeId> = owners.iter().collect();
            assert_eq!(set.len(), owners.len(), "{} duplicated", strategy.name());
            for o in &owners {
                assert!(members.contains(o), "{} non-member", strategy.name());
            }
            assert_eq!(
                strategy.owners(&id, height, &members, r),
                owners,
                "{} non-deterministic",
                strategy.name()
            );
        }
    }
}

/// Rendezvous assignment: removing a non-owner never changes a block's
/// owner set (minimal disruption, exact form).
#[test]
fn rendezvous_ignores_non_owner_departures() {
    let mut rng = Xoshiro256::seed_from_u64(0xE2);
    for _ in 0..CASES {
        let c = rng.gen_range(3usize..30);
        let key = rng.next_u64();
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let id = Sha256::digest(&key.to_be_bytes());
        let r = 2.min(c);
        let owners = RendezvousAssignment.owners(&id, 0, &members, r);
        let gone = members[rng.gen_range(0usize..c)];
        if owners.contains(&gone) {
            continue; // departure of an owner must change the set
        }
        let survivors: Vec<NodeId> = members.iter().copied().filter(|m| *m != gone).collect();
        assert_eq!(RendezvousAssignment.owners(&id, 0, &survivors, r), owners);
    }
}

/// Audit + plan + apply = audit clean: for any random holdings and
/// any live subset, executing the recovery plan leaves no block
/// under-replicated that had at least one live holder.
#[test]
fn recovery_plan_restores_replication() {
    let mut rng = Xoshiro256::seed_from_u64(0xE3);
    for _ in 0..CASES {
        let c = rng.gen_range(4usize..16);
        let chain = rng.gen_range(1u64..40);
        let seed = rng.next_u64();
        let members: Vec<NodeId> = (0..c as u64).map(NodeId::new).collect();
        let r = 2.min(c);
        let blocks: Vec<BlockRef> = (0..chain)
            .map(|h| BlockRef {
                id: Sha256::digest(&(h ^ seed).to_be_bytes()),
                height: h,
                body_bytes: 100,
            })
            .collect();
        // Initial holdings per the assignment.
        let mut holdings = Holdings::new();
        for b in &blocks {
            for owner in RendezvousAssignment.owners(&b.id, b.height, &members, r) {
                holdings.entry(owner).or_default().insert(b.height);
            }
        }
        let mut live: BTreeSet<NodeId> = members.iter().copied().collect();
        for _ in 0..rng.gen_range(0usize..4) {
            live.remove(&members[rng.gen_range(0usize..c)]);
        }
        if live.is_empty() {
            continue;
        }

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, r);
        for t in &plan.transfers {
            assert!(live.contains(&t.source));
            assert!(live.contains(&t.destination));
            holdings.entry(t.destination).or_default().insert(t.height);
        }

        // Re-plan: nothing further to move.
        let again = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, r);
        assert!(again.transfers.is_empty());

        // Every block with a live holder reaches min(r, live) replicas.
        let target = r.min(live.len());
        let report = audit_cluster(&holdings, &live, chain);
        for h in 0..chain {
            let was_recoverable = !plan.unrecoverable.contains(&h);
            if was_recoverable {
                let live_replicas = holdings
                    .iter()
                    .filter(|(n, hs)| live.contains(n) && hs.contains(&h))
                    .count();
                assert!(
                    live_replicas >= target,
                    "height {h}: {live_replicas} < {target}"
                );
            }
        }
        // The audit agrees with the holder count.
        assert_eq!(report.chain_len, chain);
    }
}

/// Audit availability is exactly the fraction of heights with a live
/// holder.
#[test]
fn audit_availability_matches_definition() {
    let mut rng = Xoshiro256::seed_from_u64(0xE4);
    for _ in 0..CASES {
        let chain = rng.gen_range(1u64..60);
        let live_mask = rng.gen_range(0u32..256) as u8;
        let mut holdings = Holdings::new();
        for _ in 0..rng.gen_range(0usize..80) {
            let node = rng.gen_range(0u64..8);
            let height = rng.gen_range(0u64..60);
            if height < chain {
                holdings
                    .entry(NodeId::new(node))
                    .or_default()
                    .insert(height);
            }
        }
        let live: BTreeSet<NodeId> = (0..8u64)
            .filter(|i| live_mask & (1 << i) != 0)
            .map(NodeId::new)
            .collect();
        let report = audit_cluster(&holdings, &live, chain);
        let covered = (0..chain)
            .filter(|h| {
                holdings
                    .iter()
                    .any(|(n, hs)| live.contains(n) && hs.contains(h))
            })
            .count() as f64;
        assert!((report.availability() - covered / chain as f64).abs() < 1e-12);
        assert_eq!(report.missing.len() as u64, chain - covered as u64);
    }
}
