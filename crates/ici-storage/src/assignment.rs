//! Block-to-node assignment inside a cluster.
//!
//! ICIStrategy stores each block on `r` of a cluster's `c` members. The
//! assignment must be (a) computable by every member locally from the block
//! id and the membership view — no coordination messages — and (b) stable
//! under churn, so a join/leave moves few blocks. Three strategies:
//!
//! * [`RendezvousAssignment`] — highest-random-weight hashing; optimal
//!   churn behaviour (only blocks owned by the departed node move), used by
//!   default.
//! * [`RingAssignment`] — consistent-hash ring with virtual nodes; the
//!   classic DHT construction, kept as an ablation point.
//! * [`RoundRobinAssignment`] — `height mod c` striping; perfectly uniform
//!   but reshuffles almost everything on membership change. The strawman
//!   the ablation bench quantifies against.

use ici_crypto::lottery::rendezvous_top;
use ici_crypto::sha256::{Digest, Sha256};
use ici_net::node::NodeId;

use ici_chain::block::Height;

/// Chooses which cluster members store a block.
///
/// Implementations must be deterministic functions of their arguments.
pub trait AssignmentStrategy {
    /// Returns the `r` owners of block `(id, height)` among `members`
    /// (fewer if `members.len() < r`). `members` is the cluster's active
    /// member list, ascending by id.
    fn owners(&self, id: &Digest, height: Height, members: &[NodeId], r: usize) -> Vec<NodeId>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// Highest-random-weight (rendezvous) assignment.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RendezvousAssignment;

impl AssignmentStrategy for RendezvousAssignment {
    fn owners(&self, id: &Digest, _height: Height, members: &[NodeId], r: usize) -> Vec<NodeId> {
        let _span = ici_telemetry::span!("storage/assign_owners", phase = "rendezvous");
        rendezvous_top(id, members.iter().map(|n| n.get()), r)
            .into_iter()
            .map(NodeId::new)
            .collect()
    }

    fn name(&self) -> &'static str {
        "rendezvous"
    }
}

/// Round-robin striping by height.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundRobinAssignment;

impl AssignmentStrategy for RoundRobinAssignment {
    fn owners(&self, _id: &Digest, height: Height, members: &[NodeId], r: usize) -> Vec<NodeId> {
        let _span = ici_telemetry::span!("storage/assign_owners", phase = "round-robin");
        if members.is_empty() {
            return Vec::new();
        }
        let c = members.len();
        let start = (height as usize) % c;
        (0..r.min(c)).map(|i| members[(start + i) % c]).collect()
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Consistent-hash ring with virtual nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingAssignment {
    /// Virtual nodes per member; more gives smoother balance at higher
    /// assignment cost.
    pub vnodes: u32,
}

impl Default for RingAssignment {
    fn default() -> RingAssignment {
        RingAssignment { vnodes: 16 }
    }
}

impl RingAssignment {
    fn position(member: NodeId, vnode: u32) -> u64 {
        let mut h = Sha256::new();
        h.update(b"ici-ring-v1:");
        h.update(&member.get().to_be_bytes());
        h.update(&vnode.to_be_bytes());
        h.finalize().prefix_u64()
    }
}

impl AssignmentStrategy for RingAssignment {
    fn owners(&self, id: &Digest, _height: Height, members: &[NodeId], r: usize) -> Vec<NodeId> {
        let _span = ici_telemetry::span!("storage/assign_owners", phase = "consistent-ring");
        if members.is_empty() || r == 0 {
            return Vec::new();
        }
        let mut ring: Vec<(u64, NodeId)> = Vec::with_capacity(members.len() * self.vnodes as usize);
        for &m in members {
            for v in 0..self.vnodes {
                ring.push((RingAssignment::position(m, v), m));
            }
        }
        ring.sort_unstable();
        let key = id.prefix_u64();
        let start = ring.partition_point(|(pos, _)| *pos < key);
        let mut owners = Vec::with_capacity(r.min(members.len()));
        for i in 0..ring.len() {
            let (_, node) = ring[(start + i) % ring.len()];
            if !owners.contains(&node) {
                owners.push(node);
                if owners.len() == r.min(members.len()) {
                    break;
                }
            }
        }
        owners
    }

    fn name(&self) -> &'static str {
        "consistent-ring"
    }
}

/// Computes, for a whole chain segment, how many blocks each member owns
/// under `strategy` — the balance diagnostic used by the ablation bench.
pub fn ownership_histogram<S: AssignmentStrategy + ?Sized>(
    strategy: &S,
    block_ids: &[(Digest, Height)],
    members: &[NodeId],
    r: usize,
) -> std::collections::BTreeMap<NodeId, usize> {
    let mut counts: std::collections::BTreeMap<NodeId, usize> =
        members.iter().map(|m| (*m, 0)).collect();
    for (id, height) in block_ids {
        for owner in strategy.owners(id, *height, members, r) {
            *counts.entry(owner).or_insert(0) += 1;
        }
    }
    counts
}

/// Fraction of blocks whose owner set changes when `removed` leaves
/// `members` — the churn-stability metric (lower is better; `r/c` is
/// optimal).
pub fn churn_disruption<S: AssignmentStrategy + ?Sized>(
    strategy: &S,
    block_ids: &[(Digest, Height)],
    members: &[NodeId],
    removed: NodeId,
    r: usize,
) -> f64 {
    if block_ids.is_empty() {
        return 0.0;
    }
    let survivors: Vec<NodeId> = members.iter().copied().filter(|m| *m != removed).collect();
    let mut moved = 0usize;
    for (id, height) in block_ids {
        let before: std::collections::BTreeSet<NodeId> = strategy
            .owners(id, *height, members, r)
            .into_iter()
            .filter(|m| *m != removed)
            .collect();
        let after: std::collections::BTreeSet<NodeId> = strategy
            .owners(id, *height, &survivors, r)
            .into_iter()
            .collect();
        // Count blocks that must transfer to some node that did not hold
        // them before.
        if after.difference(&before).next().is_some() {
            moved += 1;
        }
    }
    moved as f64 / block_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId::new).collect()
    }

    fn block_ids(n: u64) -> Vec<(Digest, Height)> {
        (0..n)
            .map(|h| (Sha256::digest(&h.to_be_bytes()), h))
            .collect()
    }

    fn strategies() -> Vec<Box<dyn AssignmentStrategy>> {
        vec![
            Box::new(RendezvousAssignment),
            Box::new(RoundRobinAssignment),
            Box::new(RingAssignment::default()),
        ]
    }

    #[test]
    fn owners_are_distinct_members_of_requested_count() {
        let m = members(10);
        for s in strategies() {
            for (id, h) in block_ids(20) {
                let owners = s.owners(&id, h, &m, 3);
                assert_eq!(owners.len(), 3, "{}", s.name());
                let set: std::collections::HashSet<_> = owners.iter().collect();
                assert_eq!(set.len(), 3, "{} produced duplicates", s.name());
                for o in &owners {
                    assert!(m.contains(o), "{} chose a non-member", s.name());
                }
            }
        }
    }

    #[test]
    fn assignment_is_deterministic() {
        let m = members(8);
        let (id, h) = (Sha256::digest(b"block"), 5);
        for s in strategies() {
            assert_eq!(
                s.owners(&id, h, &m, 2),
                s.owners(&id, h, &m, 2),
                "{}",
                s.name()
            );
        }
    }

    #[test]
    fn r_larger_than_membership_returns_all() {
        let m = members(3);
        let (id, h) = (Sha256::digest(b"x"), 0);
        for s in strategies() {
            let owners = s.owners(&id, h, &m, 10);
            assert_eq!(owners.len(), 3, "{}", s.name());
        }
    }

    #[test]
    fn empty_membership_returns_empty() {
        let (id, h) = (Sha256::digest(b"x"), 0);
        for s in strategies() {
            assert!(s.owners(&id, h, &[], 2).is_empty(), "{}", s.name());
        }
    }

    #[test]
    fn round_robin_is_perfectly_uniform_with_r1() {
        let m = members(8);
        let ids = block_ids(80);
        let hist = ownership_histogram(&RoundRobinAssignment, &ids, &m, 1);
        for (node, count) in hist {
            assert_eq!(count, 10, "{node}");
        }
    }

    #[test]
    fn hash_strategies_are_roughly_uniform() {
        let m = members(8);
        let ids = block_ids(1600);
        for s in [
            &RendezvousAssignment as &dyn AssignmentStrategy,
            &RingAssignment { vnodes: 64 },
        ] {
            let hist = ownership_histogram(s, &ids, &m, 1);
            let expected = 1600 / 8;
            for (node, count) in hist {
                assert!(
                    count > expected / 2 && count < expected * 2,
                    "{}: {node} owns {count}, expected ≈{expected}",
                    s.name()
                );
            }
        }
    }

    #[test]
    fn rendezvous_has_minimal_churn_disruption() {
        let m = members(10);
        let ids = block_ids(400);
        let hrw = churn_disruption(&RendezvousAssignment, &ids, &m, NodeId::new(3), 2);
        let rr = churn_disruption(&RoundRobinAssignment, &ids, &m, NodeId::new(3), 2);
        // HRW: only blocks owned by n3 move ≈ r/c = 20%. Round-robin
        // reshuffles nearly everything.
        assert!(hrw < 0.35, "hrw disruption {hrw}");
        assert!(rr > 0.8, "round-robin disruption {rr}");
        assert!(hrw < rr);
    }

    #[test]
    fn ring_with_more_vnodes_is_smoother() {
        let m = members(8);
        let ids = block_ids(1600);
        let spread = |vnodes: u32| -> usize {
            let hist = ownership_histogram(&RingAssignment { vnodes }, &ids, &m, 1);
            let max = hist.values().max().copied().unwrap_or(0);
            let min = hist.values().min().copied().unwrap_or(0);
            max - min
        };
        assert!(spread(64) <= spread(1), "vnodes should smooth the ring");
    }

    #[test]
    fn round_robin_height_striping() {
        let m = members(4);
        let id = Sha256::digest(b"irrelevant");
        assert_eq!(
            RoundRobinAssignment.owners(&id, 6, &m, 2),
            vec![NodeId::new(2), NodeId::new(3)]
        );
        assert_eq!(
            RoundRobinAssignment.owners(&id, 7, &m, 2),
            vec![NodeId::new(3), NodeId::new(0)]
        );
    }
}
