//! Storage-distribution statistics.
//!
//! The storage experiments report per-node footprints; this module turns a
//! set of per-node byte counts into the summary rows the tables print
//! (mean / median / p95 / max, plus a balance coefficient).

/// Summary statistics over per-node storage footprints.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StorageStats {
    /// Number of nodes sampled.
    pub nodes: usize,
    /// Total bytes across all nodes.
    pub total: u64,
    /// Mean bytes per node.
    pub mean: f64,
    /// Minimum bytes on any node.
    pub min: u64,
    /// Median bytes.
    pub median: u64,
    /// 95th percentile bytes.
    pub p95: u64,
    /// Maximum bytes on any node.
    pub max: u64,
}

impl StorageStats {
    /// Computes statistics over per-node byte counts. Returns the default
    /// (all-zero) value for an empty input.
    pub fn from_bytes<I>(bytes: I) -> StorageStats
    where
        I: IntoIterator<Item = u64>,
    {
        let mut values: Vec<u64> = bytes.into_iter().collect();
        if values.is_empty() {
            return StorageStats::default();
        }
        values.sort_unstable();
        let nodes = values.len();
        let total: u64 = values.iter().sum();
        StorageStats {
            nodes,
            total,
            mean: total as f64 / nodes as f64,
            min: values[0],
            median: values[nodes / 2],
            p95: values[((nodes as f64 * 0.95) as usize).min(nodes - 1)],
            max: values[nodes - 1],
        }
    }

    /// Max/mean ratio; 1.0 is perfect balance.
    pub fn balance_ratio(&self) -> f64 {
        if self.mean == 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// Formats a byte count using binary units, for table rendering.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_known_values() {
        let stats = StorageStats::from_bytes([10, 20, 30, 40, 100]);
        assert_eq!(stats.nodes, 5);
        assert_eq!(stats.total, 200);
        assert_eq!(stats.mean, 40.0);
        assert_eq!(stats.min, 10);
        assert_eq!(stats.median, 30);
        assert_eq!(stats.max, 100);
        assert_eq!(stats.balance_ratio(), 2.5);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let stats = StorageStats::from_bytes(std::iter::empty());
        assert_eq!(stats, StorageStats::default());
        assert_eq!(stats.balance_ratio(), 1.0);
    }

    #[test]
    fn single_value() {
        let stats = StorageStats::from_bytes([7]);
        assert_eq!(stats.median, 7);
        assert_eq!(stats.p95, 7);
        assert_eq!(stats.balance_ratio(), 1.0);
    }

    #[test]
    fn p95_on_hundred_values() {
        let stats = StorageStats::from_bytes(1..=100u64);
        assert_eq!(stats.p95, 96);
        assert_eq!(stats.median, 51);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let stats = StorageStats::from_bytes([50, 10, 40, 20, 30]);
        assert_eq!(stats.min, 10);
        assert_eq!(stats.max, 50);
        assert_eq!(stats.median, 30);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(5 * 1024 * 1024), "5.00 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
        assert_eq!(format_bytes(0), "0 B");
    }
}
