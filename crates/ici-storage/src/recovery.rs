//! Failure recovery: re-replication planning.
//!
//! When a cluster member crashes, the blocks it held lose one replica; any
//! block that drops below the target replication `r` must be copied to a
//! new owner before further failures break intra-cluster integrity. The
//! planner computes, purely from local knowledge (holdings snapshot +
//! membership + the deterministic assignment), the minimal set of
//! `(height, source, destination)` transfers.

use std::collections::BTreeSet;

use ici_crypto::sha256::Digest;
use ici_net::node::NodeId;

use ici_chain::block::Height;

use crate::assignment::AssignmentStrategy;
use crate::audit::Holdings;

/// One planned body transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Height of the block to copy.
    pub height: Height,
    /// A live member that holds the body.
    pub source: NodeId,
    /// The member that must receive it.
    pub destination: NodeId,
    /// Body size in bytes (for traffic accounting).
    pub bytes: u64,
}

/// The outcome of recovery planning.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// Transfers to execute, ascending by height.
    pub transfers: Vec<Transfer>,
    /// Heights no live member of the cluster still holds; these require a
    /// cross-cluster fetch (handled by the core query protocol).
    pub unrecoverable: Vec<Height>,
}

impl RecoveryPlan {
    /// Total bytes the plan moves.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Whether nothing needs to move.
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty() && self.unrecoverable.is_empty()
    }
}

/// Description of one block for the planner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockRef {
    /// Block id (drives hash-based assignment).
    pub id: Digest,
    /// Height in the chain.
    pub height: Height,
    /// Encoded body length.
    pub body_bytes: u64,
}

/// Plans the transfers that restore every block of `blocks` to `r` live
/// replicas within one cluster.
///
/// * `holdings` — who currently holds which heights (may include departed
///   nodes; they are ignored unless in `live`).
/// * `live` — current live members, the candidate owners.
/// * `strategy` — the cluster's assignment; new owners are the strategy's
///   choice among live members, skipping nodes that already hold the block.
///
/// Sources are chosen round-robin among live holders to spread repair load.
pub fn plan_recovery<S: AssignmentStrategy + ?Sized>(
    blocks: &[BlockRef],
    holdings: &Holdings,
    live: &BTreeSet<NodeId>,
    strategy: &S,
    r: usize,
) -> RecoveryPlan {
    let _span = ici_telemetry::span!("storage/plan_recovery");
    let live_members: Vec<NodeId> = live.iter().copied().collect();
    let mut plan = RecoveryPlan::default();

    for block in blocks {
        let holders: Vec<NodeId> = live_members
            .iter()
            .copied()
            .filter(|n| {
                holdings
                    .get(n)
                    .map_or(false, |heights| heights.contains(&block.height))
            })
            .collect();

        if holders.is_empty() {
            plan.unrecoverable.push(block.height);
            continue;
        }
        let deficit = r.min(live_members.len()).saturating_sub(holders.len());
        if deficit == 0 {
            continue;
        }

        // New owners: assignment order over live members, skipping current
        // holders, taking `deficit`.
        let preferred = strategy.owners(&block.id, block.height, &live_members, live_members.len());
        let mut added = 0;
        let mut source_cursor = 0;
        for candidate in preferred {
            if added == deficit {
                break;
            }
            if holders.contains(&candidate) {
                continue;
            }
            let source = holders[source_cursor % holders.len()];
            source_cursor += 1;
            plan.transfers.push(Transfer {
                height: block.height,
                source,
                destination: candidate,
                bytes: block.body_bytes,
            });
            added += 1;
        }
    }
    plan.transfers.sort_by_key(|t| (t.height, t.destination));
    plan.unrecoverable.sort_unstable();
    ici_telemetry::counter_add(
        "storage/repair_transfers",
        ici_telemetry::Label::Global,
        plan.transfers.len() as u64,
    );
    ici_telemetry::counter_add(
        "storage/repair_bytes",
        ici_telemetry::Label::Global,
        plan.transfers.iter().map(|t| t.bytes).sum(),
    );
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::RendezvousAssignment;
    use ici_crypto::sha256::Sha256;

    fn block(h: Height) -> BlockRef {
        BlockRef {
            id: Sha256::digest(&h.to_be_bytes()),
            height: h,
            body_bytes: 1_000,
        }
    }

    fn full_cluster(n: u64, chain: Height, r: usize) -> (Vec<BlockRef>, Holdings) {
        let members: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        let blocks: Vec<BlockRef> = (0..chain).map(block).collect();
        let mut holdings = Holdings::new();
        for b in &blocks {
            for owner in RendezvousAssignment.owners(&b.id, b.height, &members, r) {
                holdings.entry(owner).or_default().insert(b.height);
            }
        }
        (blocks, holdings)
    }

    #[test]
    fn healthy_cluster_needs_no_plan() {
        let (blocks, holdings) = full_cluster(8, 40, 2);
        let live: BTreeSet<NodeId> = (0..8).map(NodeId::new).collect();
        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        assert!(plan.is_empty());
    }

    #[test]
    fn single_failure_restores_replication() {
        let (blocks, holdings) = full_cluster(8, 40, 2);
        let mut live: BTreeSet<NodeId> = (0..8).map(NodeId::new).collect();
        live.remove(&NodeId::new(3));

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        assert!(plan.unrecoverable.is_empty());
        // Every block n3 owned needs exactly one new replica.
        let lost: usize = holdings.get(&NodeId::new(3)).map(|h| h.len()).unwrap_or(0);
        assert_eq!(plan.transfers.len(), lost);
        for t in &plan.transfers {
            assert_ne!(t.destination, NodeId::new(3));
            assert!(live.contains(&t.source));
            assert!(live.contains(&t.destination));
            // The destination must not already hold the block.
            assert!(!holdings
                .get(&t.destination)
                .map_or(false, |h| h.contains(&t.height)));
        }
        assert_eq!(plan.total_bytes(), lost as u64 * 1_000);
    }

    #[test]
    fn applying_the_plan_restores_integrity() {
        let (blocks, mut holdings) = full_cluster(10, 60, 2);
        let mut live: BTreeSet<NodeId> = (0..10).map(NodeId::new).collect();
        live.remove(&NodeId::new(1));
        live.remove(&NodeId::new(7));

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        for t in &plan.transfers {
            holdings.entry(t.destination).or_default().insert(t.height);
        }
        // Re-plan: nothing left to do.
        let again = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        assert!(again.transfers.is_empty(), "second plan: {again:?}");
    }

    #[test]
    fn unrecoverable_blocks_are_reported() {
        let (blocks, holdings) = full_cluster(4, 20, 1);
        // Kill the sole holder of each r=1 block by killing everyone who
        // holds block 0's body.
        let holder_of_0 = holdings
            .iter()
            .find(|(_, hs)| hs.contains(&0))
            .map(|(n, _)| *n)
            .expect("someone holds block 0");
        let mut live: BTreeSet<NodeId> = (0..4).map(NodeId::new).collect();
        live.remove(&holder_of_0);

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 1);
        assert!(plan.unrecoverable.contains(&0));
    }

    #[test]
    fn deficit_capped_by_live_membership() {
        // 2 live members, r=3: target replication is effectively 2.
        let (blocks, holdings) = full_cluster(2, 10, 3);
        let live: BTreeSet<NodeId> = (0..2).map(NodeId::new).collect();
        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 3);
        assert!(plan.transfers.is_empty());
    }

    #[test]
    fn dead_cluster_reports_every_height_unrecoverable() {
        let (blocks, holdings) = full_cluster(6, 25, 2);
        // Every holder crashed; the only live members never stored anything.
        let live: BTreeSet<NodeId> = (6..9).map(NodeId::new).collect();
        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        assert!(plan.transfers.is_empty());
        assert_eq!(plan.total_bytes(), 0);
        assert_eq!(plan.unrecoverable, (0..25).collect::<Vec<Height>>());
        assert!(!plan.is_empty(), "lost data is not a no-op plan");
    }

    #[test]
    fn duplicate_offers_never_schedule_redundant_transfers() {
        let (blocks, mut holdings) = full_cluster(8, 40, 2);
        // Node 5 offers a surplus replica of every block, duplicating
        // whatever the assignment already placed on it.
        for b in &blocks {
            holdings.entry(NodeId::new(5)).or_default().insert(b.height);
        }
        let mut live: BTreeSet<NodeId> = (0..8).map(NodeId::new).collect();
        live.remove(&NodeId::new(2));

        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 2);
        assert!(plan.unrecoverable.is_empty());
        let mut seen = BTreeSet::new();
        for t in &plan.transfers {
            // Never copy to a node that already holds the block, never
            // schedule the same (height, destination) twice, and never
            // self-transfer.
            assert!(
                !holdings
                    .get(&t.destination)
                    .map_or(false, |h| h.contains(&t.height)),
                "offered a shard to an existing holder: {t:?}"
            );
            assert!(seen.insert((t.height, t.destination)), "duplicate: {t:?}");
            assert_ne!(t.source, t.destination);
        }
        // Blocks whose second replica the surplus already restored must
        // not appear in the plan at all.
        for b in &blocks {
            let holders = live
                .iter()
                .filter(|n| holdings.get(n).map_or(false, |h| h.contains(&b.height)))
                .count();
            if holders >= 2 {
                assert!(
                    plan.transfers.iter().all(|t| t.height != b.height),
                    "replicated block {b:?} was repaired anyway"
                );
            }
        }
    }

    #[test]
    fn sources_rotate_among_holders() {
        let (blocks, holdings) = full_cluster(6, 30, 3);
        let mut live: BTreeSet<NodeId> = (0..6).map(NodeId::new).collect();
        live.remove(&NodeId::new(0));
        let plan = plan_recovery(&blocks, &holdings, &live, &RendezvousAssignment, 3);
        if plan.transfers.len() >= 4 {
            let sources: BTreeSet<NodeId> = plan.transfers.iter().map(|t| t.source).collect();
            assert!(sources.len() > 1, "all repairs from one source");
        }
    }
}
