//! Intra-cluster integrity auditing.
//!
//! The defining invariant of ICIStrategy is **intra-cluster integrity**:
//! every cluster, as a set, holds every block of the chain. This module
//! checks that invariant over a snapshot of who-holds-what and reports how
//! much replication slack each height has — the input to the availability
//! experiment (E6).

use std::collections::{BTreeMap, BTreeSet};

use ici_chain::block::Height;
use ici_net::node::NodeId;

/// Snapshot of body holdings inside one cluster: node → heights held.
pub type Holdings = BTreeMap<NodeId, BTreeSet<Height>>;

/// Result of an integrity audit over one cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Chain length audited against (heights `0..chain_len`).
    pub chain_len: Height,
    /// Heights held by no live member — integrity violations.
    pub missing: Vec<Height>,
    /// Heights held by exactly one live member (no failure slack).
    pub singly_held: Vec<Height>,
    /// Histogram: live replica count → number of heights.
    pub replication_histogram: BTreeMap<usize, u64>,
}

impl IntegrityReport {
    /// Whether the cluster satisfies intra-cluster integrity.
    pub fn is_intact(&self) -> bool {
        self.missing.is_empty()
    }

    /// Fraction of heights still available, in `[0, 1]`.
    pub fn availability(&self) -> f64 {
        if self.chain_len == 0 {
            return 1.0;
        }
        1.0 - self.missing.len() as f64 / self.chain_len as f64
    }

    /// The minimum live replica count over all heights (0 if any height is
    /// missing).
    pub fn min_replication(&self) -> usize {
        self.replication_histogram
            .keys()
            .next()
            .copied()
            .unwrap_or(0)
    }
}

/// Audits one cluster: which of heights `0..chain_len` are held by live
/// members, and with how many replicas.
///
/// `live` filters `holdings`; a crashed member's copies do not count.
pub fn audit_cluster(
    holdings: &Holdings,
    live: &BTreeSet<NodeId>,
    chain_len: Height,
) -> IntegrityReport {
    let _span = ici_telemetry::span!("storage/audit_cluster");
    let mut replicas: BTreeMap<Height, usize> = (0..chain_len).map(|h| (h, 0)).collect();
    for (node, heights) in holdings {
        if !live.contains(node) {
            continue;
        }
        for h in heights {
            if *h < chain_len {
                if let Some(count) = replicas.get_mut(h) {
                    *count += 1;
                }
            }
        }
    }
    let mut missing = Vec::new();
    let mut singly_held = Vec::new();
    let mut histogram: BTreeMap<usize, u64> = BTreeMap::new();
    for (height, count) in &replicas {
        *histogram.entry(*count).or_insert(0) += 1;
        match count {
            0 => missing.push(*height),
            1 => singly_held.push(*height),
            _ => {}
        }
    }
    IntegrityReport {
        chain_len,
        missing,
        singly_held,
        replication_histogram: histogram,
    }
}

/// Audits several clusters at once; the network-wide chain is available iff
/// **every** cluster is intact (any single intact cluster can serve reads,
/// but the paper's invariant is per-cluster, and a violated cluster must
/// repair via cross-cluster traffic).
///
/// Returns `(per-cluster reports, fraction of heights available in at least
/// one cluster)`.
pub fn audit_network(
    clusters: &[(Holdings, BTreeSet<NodeId>)],
    chain_len: Height,
) -> (Vec<IntegrityReport>, f64) {
    let reports: Vec<IntegrityReport> = clusters
        .iter()
        .map(|(holdings, live)| audit_cluster(holdings, live, chain_len))
        .collect();
    if chain_len == 0 {
        return (reports, 1.0);
    }
    let mut lost_everywhere = 0u64;
    'heights: for h in 0..chain_len {
        for report in &reports {
            if report.missing.binary_search(&h).is_err() {
                continue 'heights; // some cluster still has it
            }
        }
        lost_everywhere += 1;
    }
    let availability = 1.0 - lost_everywhere as f64 / chain_len as f64;
    (reports, availability)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holdings(entries: &[(u64, &[Height])]) -> Holdings {
        entries
            .iter()
            .map(|(node, heights)| (NodeId::new(*node), heights.iter().copied().collect()))
            .collect()
    }

    fn live(ids: &[u64]) -> BTreeSet<NodeId> {
        ids.iter().map(|i| NodeId::new(*i)).collect()
    }

    #[test]
    fn intact_cluster_reports_clean() {
        let h = holdings(&[(0, &[0, 1]), (1, &[2, 3]), (2, &[0, 2])]);
        let report = audit_cluster(&h, &live(&[0, 1, 2]), 4);
        assert!(report.is_intact());
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.singly_held, vec![1, 3]);
        assert_eq!(report.replication_histogram[&1], 2);
        assert_eq!(report.replication_histogram[&2], 2);
        assert_eq!(report.min_replication(), 1);
    }

    #[test]
    fn missing_heights_are_found() {
        let h = holdings(&[(0, &[0]), (1, &[2])]);
        let report = audit_cluster(&h, &live(&[0, 1]), 4);
        assert!(!report.is_intact());
        assert_eq!(report.missing, vec![1, 3]);
        assert_eq!(report.availability(), 0.5);
        assert_eq!(report.min_replication(), 0);
    }

    #[test]
    fn dead_members_do_not_count() {
        let h = holdings(&[(0, &[0, 1]), (1, &[0, 1])]);
        let report = audit_cluster(&h, &live(&[1]), 2);
        assert!(report.is_intact());
        assert_eq!(report.singly_held, vec![0, 1]);

        let report = audit_cluster(&h, &live(&[]), 2);
        assert_eq!(report.missing, vec![0, 1]);
        assert_eq!(report.availability(), 0.0);
    }

    #[test]
    fn heights_beyond_chain_len_ignored() {
        let h = holdings(&[(0, &[0, 99])]);
        let report = audit_cluster(&h, &live(&[0]), 1);
        assert!(report.is_intact());
        assert_eq!(report.chain_len, 1);
    }

    #[test]
    fn empty_chain_is_trivially_available() {
        let report = audit_cluster(&Holdings::new(), &live(&[]), 0);
        assert!(report.is_intact());
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn network_availability_is_union_over_clusters() {
        // Cluster A lost height 1; cluster B lost height 2; height 3 lost
        // in both.
        let a = (holdings(&[(0, &[0, 2])]), live(&[0]));
        let b = (holdings(&[(1, &[0, 1])]), live(&[1]));
        let (reports, availability) = audit_network(&[a, b], 4);
        assert_eq!(reports[0].missing, vec![1, 3]);
        assert_eq!(reports[1].missing, vec![2, 3]);
        assert!((availability - 0.75).abs() < 1e-9);
    }
}
