//! Storage layer for ICIStrategy: assignment, auditing, recovery, stats.
//!
//! * [`assignment`] — deterministic block→owner mapping inside a cluster
//!   (rendezvous hashing, consistent ring, round-robin);
//! * [`audit`] — the intra-cluster integrity invariant checker;
//! * [`recovery`] — re-replication planning after member failures;
//! * [`stats`] — per-node footprint summaries for the storage tables.
//!
//! # Examples
//!
//! ```
//! use ici_crypto::sha256::Sha256;
//! use ici_net::node::NodeId;
//! use ici_storage::assignment::{AssignmentStrategy, RendezvousAssignment};
//!
//! let members: Vec<NodeId> = (0..16).map(NodeId::new).collect();
//! let block_id = Sha256::digest(b"block 42");
//! let owners = RendezvousAssignment.owners(&block_id, 42, &members, 2);
//! assert_eq!(owners.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod audit;
pub mod recovery;
pub mod stats;

pub use assignment::{
    AssignmentStrategy, RendezvousAssignment, RingAssignment, RoundRobinAssignment,
};
pub use audit::{audit_cluster, audit_network, Holdings, IntegrityReport};
pub use recovery::{plan_recovery, BlockRef, RecoveryPlan, Transfer};
pub use stats::{format_bytes, StorageStats};
