//! Workload generation: streams of signed transactions.
//!
//! Experiments drive every strategy with the same deterministic workload so
//! that storage/communication/latency differences come from the strategies,
//! not the load. Generators cover the paper-relevant axes:
//!
//! * **sender popularity** — uniform or Zipf (real chains are heavily
//!   skewed toward a few hot accounts);
//! * **payload size** — fixed or two-point mix (simple transfers vs
//!   contract-call-sized payloads);
//! * **nonce correctness** — the generator tracks per-sender nonces so
//!   every emitted transaction is valid against a state that has applied
//!   all previous ones.
//!
//! # Examples
//!
//! ```
//! use ici_workload::{WorkloadConfig, WorkloadGenerator, SenderDistribution};
//!
//! let mut generator = WorkloadGenerator::new(WorkloadConfig {
//!     accounts: 100,
//!     senders: SenderDistribution::Zipf { exponent: 1.0 },
//!     ..WorkloadConfig::default()
//! });
//! let batch = generator.batch(50);
//! assert_eq!(batch.len(), 50);
//! assert!(batch.iter().all(|tx| tx.verify_signature()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use ici_chain::transaction::{Address, Transaction};
use ici_crypto::sig::Keypair;
use ici_rng::Xoshiro256;

/// How senders are drawn from the account universe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SenderDistribution {
    /// Every account equally likely.
    Uniform,
    /// Zipf with the given exponent; account 0 is hottest.
    Zipf {
        /// The skew exponent `s` (1.0 ≈ web-like popularity).
        exponent: f64,
    },
}

/// How transaction payload sizes are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PayloadSize {
    /// Every payload exactly this many bytes.
    Fixed(usize),
    /// `fraction_large` of payloads are `large` bytes, the rest `small`.
    Mix {
        /// Size of the common small payload.
        small: usize,
        /// Size of the occasional large payload.
        large: usize,
        /// Fraction of large payloads, in `[0, 1]`.
        fraction_large: f64,
    },
}

/// Workload parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of accounts (seeds `0..accounts`; fund them in genesis).
    pub accounts: u64,
    /// Sender draw.
    pub senders: SenderDistribution,
    /// Payload sizing.
    pub payload: PayloadSize,
    /// Transfer amount per transaction.
    pub amount: u64,
    /// Fee per transaction.
    pub fee: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// 64 accounts, uniform senders, 128-byte payloads.
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 64,
            senders: SenderDistribution::Uniform,
            payload: PayloadSize::Fixed(128),
            amount: 1,
            fee: 1,
            seed: 7,
        }
    }
}

/// A deterministic transaction stream with per-sender nonce tracking.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: Xoshiro256,
    /// Per-sender next nonce. BTreeMap: the generator's output feeds
    /// byte-compared artifacts, and the `unordered-iter` lint gates
    /// this crate, so even bookkeeping maps stay ordered.
    nonces: BTreeMap<u64, u64>,
    /// Precomputed Zipf CDF (empty for uniform).
    zipf_cdf: Vec<f64>,
    emitted: u64,
}

impl WorkloadGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `accounts == 0`.
    pub fn new(config: WorkloadConfig) -> WorkloadGenerator {
        assert!(config.accounts > 0, "need at least one account");
        let zipf_cdf = match config.senders {
            SenderDistribution::Uniform => Vec::new(),
            SenderDistribution::Zipf { exponent } => {
                let mut weights: Vec<f64> = (1..=config.accounts)
                    .map(|rank| 1.0 / (rank as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
        };
        WorkloadGenerator {
            rng: Xoshiro256::seed_from_u64(config.seed ^ 0x774C_0AD5),
            config,
            nonces: BTreeMap::new(),
            zipf_cdf,
            emitted: 0,
        }
    }

    /// Number of transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn draw_sender(&mut self) -> u64 {
        match self.config.senders {
            SenderDistribution::Uniform => self.rng.gen_range(0..self.config.accounts),
            SenderDistribution::Zipf { .. } => {
                let u: f64 = self.rng.gen_f64();
                self.zipf_cdf.partition_point(|cdf| *cdf < u) as u64
            }
        }
    }

    fn draw_payload(&mut self) -> Vec<u8> {
        let len = match self.config.payload {
            PayloadSize::Fixed(n) => n,
            PayloadSize::Mix {
                small,
                large,
                fraction_large,
            } => {
                if self.rng.gen_f64() < fraction_large {
                    large
                } else {
                    small
                }
            }
        };
        // Cheap deterministic filler derived from the stream position.
        let tag = self.emitted as u8;
        vec![tag; len]
    }

    /// Emits the next transaction.
    pub fn next_tx(&mut self) -> Transaction {
        let sender = self.draw_sender();
        let recipient = (sender + 1 + self.rng.gen_range(0..self.config.accounts.max(2) - 1))
            % self.config.accounts;
        let nonce = {
            let e = self.nonces.entry(sender).or_insert(0);
            let n = *e;
            *e += 1;
            n
        };
        let payload = self.draw_payload();
        self.emitted += 1;
        Transaction::signed(
            &Keypair::from_seed(sender),
            Address::from_seed(recipient),
            self.config.amount,
            self.config.fee,
            nonce,
            payload,
        )
    }

    /// Emits a batch of `n` transactions.
    pub fn batch(&mut self, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_tx()).collect()
    }

    /// Mean encoded transaction size of this configuration, for analytic
    /// sizing (fixed fields + expected payload).
    pub fn mean_tx_bytes(&self) -> f64 {
        let fixed = (33 + 20 + 8 + 8 + 8 + 4 + 64) as f64;
        let payload = match self.config.payload {
            PayloadSize::Fixed(n) => n as f64,
            PayloadSize::Mix {
                small,
                large,
                fraction_large,
            } => small as f64 * (1.0 - fraction_large) + large as f64 * fraction_large,
        };
        fixed + payload
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Transaction;
    fn next(&mut self) -> Option<Transaction> {
        Some(self.next_tx())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_chain::codec::Encode;
    use ici_chain::genesis::GenesisConfig;
    use ici_chain::state::WorldState;

    #[test]
    fn transactions_are_valid_against_a_fresh_state() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        let genesis = GenesisConfig::uniform(64, 1_000_000);
        let mut state: WorldState = genesis.initial_state();
        for tx in generator.batch(200) {
            state
                .apply(&tx, Address::from_seed(999))
                .unwrap_or_else(|e| panic!("generated invalid tx: {e}"));
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<_> = WorkloadGenerator::new(WorkloadConfig::default())
            .batch(20)
            .iter()
            .map(|t| t.id())
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(WorkloadConfig::default())
            .batch(20)
            .iter()
            .map(|t| t.id())
            .collect();
        assert_eq!(a, b);

        let c: Vec<_> = WorkloadGenerator::new(WorkloadConfig {
            seed: 8,
            ..WorkloadConfig::default()
        })
        .batch(20)
        .iter()
        .map(|t| t.id())
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_concentrates_on_low_seeds() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            accounts: 100,
            senders: SenderDistribution::Zipf { exponent: 1.2 },
            ..WorkloadConfig::default()
        });
        let mut counts = vec![0u32; 100];
        for tx in generator.batch(2_000) {
            // Recover sender seed by matching the address.
            let sender = (0..100)
                .find(|s| Address::from_seed(*s) == tx.sender_address())
                .expect("sender in range");
            counts[sender as usize] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        assert!(
            top10 > 2_000 / 3,
            "top-10 senders only sent {top10} of 2000"
        );
    }

    #[test]
    fn uniform_is_not_concentrated() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            accounts: 100,
            ..WorkloadConfig::default()
        });
        let mut counts = vec![0u32; 100];
        for tx in generator.batch(2_000) {
            let sender = (0..100)
                .find(|s| Address::from_seed(*s) == tx.sender_address())
                .expect("sender in range");
            counts[sender as usize] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        assert!(top10 < 500, "uniform top-10 sent {top10}");
    }

    #[test]
    fn payload_mix_produces_both_sizes() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            payload: PayloadSize::Mix {
                small: 10,
                large: 1_000,
                fraction_large: 0.3,
            },
            ..WorkloadConfig::default()
        });
        let sizes: Vec<usize> = generator
            .batch(300)
            .iter()
            .map(|t| t.payload().len())
            .collect();
        let large = sizes.iter().filter(|s| **s == 1_000).count();
        let small = sizes.iter().filter(|s| **s == 10).count();
        assert_eq!(large + small, 300);
        assert!((40..=150).contains(&large), "large count {large}");
    }

    #[test]
    fn mean_tx_bytes_matches_encoding() {
        let generator = WorkloadGenerator::new(WorkloadConfig {
            payload: PayloadSize::Fixed(128),
            ..WorkloadConfig::default()
        });
        let mut g2 = generator.clone();
        let tx = g2.next_tx();
        assert_eq!(generator.mean_tx_bytes() as usize, tx.encoded_len());
    }

    #[test]
    fn recipients_differ_from_senders() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        for tx in generator.batch(100) {
            assert_ne!(tx.sender_address(), tx.recipient());
        }
    }

    #[test]
    fn iterator_interface_works() {
        let generator = WorkloadGenerator::new(WorkloadConfig::default());
        let txs: Vec<Transaction> = generator.take(5).collect();
        assert_eq!(txs.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one account")]
    fn zero_accounts_panics() {
        let _ = WorkloadGenerator::new(WorkloadConfig {
            accounts: 0,
            ..WorkloadConfig::default()
        });
    }
}
