//! Workload generation: streams of signed transactions.
//!
//! Experiments drive every strategy with the same deterministic workload so
//! that storage/communication/latency differences come from the strategies,
//! not the load. Generators cover the paper-relevant axes:
//!
//! * **sender popularity** — uniform or Zipf (real chains are heavily
//!   skewed toward a few hot accounts);
//! * **payload size** — fixed or two-point mix (simple transfers vs
//!   contract-call-sized payloads);
//! * **nonce correctness** — the generator tracks per-sender nonces so
//!   every emitted transaction is valid against a state that has applied
//!   all previous ones.
//!
//! # Examples
//!
//! ```
//! use ici_workload::{WorkloadConfig, WorkloadGenerator, SenderDistribution};
//!
//! let mut generator = WorkloadGenerator::new(WorkloadConfig {
//!     accounts: 100,
//!     senders: SenderDistribution::Zipf { exponent: 1.0 },
//!     ..WorkloadConfig::default()
//! });
//! let batch = generator.batch(50);
//! assert_eq!(batch.len(), 50);
//! assert!(batch.iter().all(|tx| tx.verify_signature()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Arc;

use ici_chain::transaction::{Address, Transaction};
use ici_crypto::sig::Keypair;
use ici_rng::Xoshiro256;

/// How senders are drawn from the account universe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SenderDistribution {
    /// Every account equally likely.
    Uniform,
    /// Zipf with the given exponent; account 0 is hottest.
    Zipf {
        /// The skew exponent `s` (1.0 ≈ web-like popularity).
        exponent: f64,
    },
}

/// How transaction payload sizes are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PayloadSize {
    /// Every payload exactly this many bytes.
    Fixed(usize),
    /// `fraction_large` of payloads are `large` bytes, the rest `small`.
    Mix {
        /// Size of the common small payload.
        small: usize,
        /// Size of the occasional large payload.
        large: usize,
        /// Fraction of large payloads, in `[0, 1]`.
        fraction_large: f64,
    },
}

/// Workload parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of accounts (seeds `0..accounts`; fund them in genesis).
    pub accounts: u64,
    /// Sender draw.
    pub senders: SenderDistribution,
    /// Payload sizing.
    pub payload: PayloadSize,
    /// Transfer amount per transaction.
    pub amount: u64,
    /// Base fee per transaction.
    pub fee: u64,
    /// Extra fee drawn uniformly from `0..=fee_jitter` per transaction,
    /// giving a fee-market pool a spread to prioritise. `0` (the
    /// default) keeps fees flat *and consumes no RNG draw*, so
    /// historical seeded streams are byte-identical.
    pub fee_jitter: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    /// 64 accounts, uniform senders, 128-byte payloads.
    fn default() -> WorkloadConfig {
        WorkloadConfig {
            accounts: 64,
            senders: SenderDistribution::Uniform,
            payload: PayloadSize::Fixed(128),
            amount: 1,
            fee: 1,
            fee_jitter: 0,
            seed: 7,
        }
    }
}

/// Bound on the lazily-filled sender keypair cache. Zipf workloads
/// concentrate on a few hot senders, so a small cache absorbs almost
/// every derivation; cold senders past the bound fall back to deriving
/// on the fly — the emitted stream is identical either way.
const KEY_CACHE_CAP: usize = 4_096;

/// A deterministic transaction stream with per-sender nonce tracking.
///
/// Construction is O(accounts) once (the Zipf cumulative table); each
/// draw is O(log accounts) binary search plus an O(1) cached keypair
/// lookup — nothing per-draw scales with the universe size, which is
/// what lets the scale tier stream from 1M+ accounts.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: Xoshiro256,
    /// Per-sender next nonce. BTreeMap: the generator's output feeds
    /// byte-compared artifacts, and the `unordered-iter` lint gates
    /// this crate, so even bookkeeping maps stay ordered.
    nonces: BTreeMap<u64, u64>,
    /// Precomputed Zipf CDF (empty for uniform). `Arc`: the table is
    /// immutable after construction and can be megabytes at 1M+
    /// accounts, so clones share it.
    zipf_cdf: Arc<[f64]>,
    /// Lazily-filled sender keypairs, bounded by [`KEY_CACHE_CAP`].
    key_cache: BTreeMap<u64, Keypair>,
    emitted: u64,
}

impl WorkloadGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if `accounts == 0`.
    pub fn new(config: WorkloadConfig) -> WorkloadGenerator {
        assert!(config.accounts > 0, "need at least one account");
        let zipf_cdf: Vec<f64> = match config.senders {
            SenderDistribution::Uniform => Vec::new(),
            SenderDistribution::Zipf { exponent } => {
                let mut weights: Vec<f64> = (1..=config.accounts)
                    .map(|rank| 1.0 / (rank as f64).powf(exponent))
                    .collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
        };
        WorkloadGenerator {
            rng: Xoshiro256::seed_from_u64(config.seed ^ 0x774C_0AD5),
            config,
            nonces: BTreeMap::new(),
            zipf_cdf: zipf_cdf.into(),
            key_cache: BTreeMap::new(),
            emitted: 0,
        }
    }

    /// The signing keypair for `sender`, from the bounded cache when
    /// possible. Derivation is deterministic, so a cache hit and a
    /// fresh derivation are indistinguishable in the output.
    fn sender_keypair(&mut self, sender: u64) -> Keypair {
        if let Some(pair) = self.key_cache.get(&sender) {
            return *pair;
        }
        let pair = Keypair::from_seed(sender);
        if self.key_cache.len() < KEY_CACHE_CAP {
            self.key_cache.insert(sender, pair);
        }
        pair
    }

    /// Number of transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The configuration in force.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    fn draw_sender(&mut self) -> u64 {
        match self.config.senders {
            SenderDistribution::Uniform => self.rng.gen_range(0..self.config.accounts),
            SenderDistribution::Zipf { .. } => {
                let u: f64 = self.rng.gen_f64();
                self.zipf_cdf.partition_point(|cdf| *cdf < u) as u64
            }
        }
    }

    fn draw_payload(&mut self) -> Vec<u8> {
        let len = match self.config.payload {
            PayloadSize::Fixed(n) => n,
            PayloadSize::Mix {
                small,
                large,
                fraction_large,
            } => {
                if self.rng.gen_f64() < fraction_large {
                    large
                } else {
                    small
                }
            }
        };
        // Cheap deterministic filler derived from the stream position.
        let tag = self.emitted as u8;
        vec![tag; len]
    }

    /// Emits the next transaction.
    pub fn next_tx(&mut self) -> Transaction {
        let sender = self.draw_sender();
        let recipient = (sender + 1 + self.rng.gen_range(0..self.config.accounts.max(2) - 1))
            % self.config.accounts;
        let nonce = {
            let e = self.nonces.entry(sender).or_insert(0);
            let n = *e;
            *e += 1;
            n
        };
        let payload = self.draw_payload();
        let fee = if self.config.fee_jitter == 0 {
            self.config.fee
        } else {
            self.config.fee + self.rng.gen_range(0..self.config.fee_jitter + 1)
        };
        self.emitted += 1;
        let pair = self.sender_keypair(sender);
        Transaction::signed(
            &pair,
            Address::from_seed(recipient),
            self.config.amount,
            fee,
            nonce,
            payload,
        )
    }

    /// Emits a batch of `n` transactions.
    pub fn batch(&mut self, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_tx()).collect()
    }

    /// Mean encoded transaction size of this configuration, for analytic
    /// sizing (fixed fields + expected payload).
    pub fn mean_tx_bytes(&self) -> f64 {
        let fixed = (33 + 20 + 8 + 8 + 8 + 4 + 64) as f64;
        let payload = match self.config.payload {
            PayloadSize::Fixed(n) => n as f64,
            PayloadSize::Mix {
                small,
                large,
                fraction_large,
            } => small as f64 * (1.0 - fraction_large) + large as f64 * fraction_large,
        };
        fixed + payload
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Transaction;
    fn next(&mut self) -> Option<Transaction> {
        Some(self.next_tx())
    }
}

/// Shape of sustained traffic: a base rate with periodic burst windows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Transactions emitted per round outside bursts.
    pub base_txs_per_round: usize,
    /// Every `burst_every`-th round is a burst (`0` disables bursts).
    pub burst_every: u64,
    /// Burst rounds emit `burst_multiplier * base_txs_per_round`.
    pub burst_multiplier: usize,
}

impl Default for TrafficConfig {
    /// 256 tx/round, a 3× burst every 8th round.
    fn default() -> TrafficConfig {
        TrafficConfig {
            base_txs_per_round: 256,
            burst_every: 8,
            burst_multiplier: 3,
        }
    }
}

/// Sustained round-based traffic over a [`WorkloadGenerator`]: each
/// round yields a batch sized by [`TrafficConfig`], with periodic
/// bursts that overrun a fee-market mempool on purpose. Fully
/// deterministic — round sizes depend only on the round counter, the
/// transactions only on the generator's seed.
#[derive(Clone, Debug)]
pub struct TrafficStream {
    generator: WorkloadGenerator,
    traffic: TrafficConfig,
    round: u64,
}

impl TrafficStream {
    /// Wraps `generator` with the given traffic shape.
    pub fn new(generator: WorkloadGenerator, traffic: TrafficConfig) -> TrafficStream {
        TrafficStream {
            generator,
            traffic,
            round: 0,
        }
    }

    /// Rounds emitted so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The underlying generator (for `emitted()` and config access).
    pub fn generator(&self) -> &WorkloadGenerator {
        &self.generator
    }

    /// Whether the next [`TrafficStream::next_round`] call is a burst.
    pub fn next_is_burst(&self) -> bool {
        self.traffic.burst_every != 0 && (self.round + 1) % self.traffic.burst_every == 0
    }

    /// Transactions the next round will emit.
    pub fn next_round_len(&self) -> usize {
        if self.next_is_burst() {
            self.traffic.base_txs_per_round * self.traffic.burst_multiplier.max(1)
        } else {
            self.traffic.base_txs_per_round
        }
    }

    /// Emits the next round's batch.
    pub fn next_round(&mut self) -> Vec<Transaction> {
        let n = self.next_round_len();
        self.round += 1;
        self.generator.batch(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ici_chain::codec::Encode;
    use ici_chain::genesis::GenesisConfig;
    use ici_chain::state::WorldState;

    #[test]
    fn transactions_are_valid_against_a_fresh_state() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        let genesis = GenesisConfig::uniform(64, 1_000_000);
        let mut state: WorldState = genesis.initial_state();
        for tx in generator.batch(200) {
            state
                .apply(&tx, Address::from_seed(999))
                .unwrap_or_else(|e| panic!("generated invalid tx: {e}"));
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<_> = WorkloadGenerator::new(WorkloadConfig::default())
            .batch(20)
            .iter()
            .map(|t| t.id())
            .collect();
        let b: Vec<_> = WorkloadGenerator::new(WorkloadConfig::default())
            .batch(20)
            .iter()
            .map(|t| t.id())
            .collect();
        assert_eq!(a, b);

        let c: Vec<_> = WorkloadGenerator::new(WorkloadConfig {
            seed: 8,
            ..WorkloadConfig::default()
        })
        .batch(20)
        .iter()
        .map(|t| t.id())
        .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_concentrates_on_low_seeds() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            accounts: 100,
            senders: SenderDistribution::Zipf { exponent: 1.2 },
            ..WorkloadConfig::default()
        });
        let mut counts = vec![0u32; 100];
        for tx in generator.batch(2_000) {
            // Recover sender seed by matching the address.
            let sender = (0..100)
                .find(|s| Address::from_seed(*s) == tx.sender_address())
                .expect("sender in range");
            counts[sender as usize] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        assert!(
            top10 > 2_000 / 3,
            "top-10 senders only sent {top10} of 2000"
        );
    }

    #[test]
    fn uniform_is_not_concentrated() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            accounts: 100,
            ..WorkloadConfig::default()
        });
        let mut counts = vec![0u32; 100];
        for tx in generator.batch(2_000) {
            let sender = (0..100)
                .find(|s| Address::from_seed(*s) == tx.sender_address())
                .expect("sender in range");
            counts[sender as usize] += 1;
        }
        let top10: u32 = counts[..10].iter().sum();
        assert!(top10 < 500, "uniform top-10 sent {top10}");
    }

    #[test]
    fn payload_mix_produces_both_sizes() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            payload: PayloadSize::Mix {
                small: 10,
                large: 1_000,
                fraction_large: 0.3,
            },
            ..WorkloadConfig::default()
        });
        let sizes: Vec<usize> = generator
            .batch(300)
            .iter()
            .map(|t| t.payload().len())
            .collect();
        let large = sizes.iter().filter(|s| **s == 1_000).count();
        let small = sizes.iter().filter(|s| **s == 10).count();
        assert_eq!(large + small, 300);
        assert!((40..=150).contains(&large), "large count {large}");
    }

    #[test]
    fn mean_tx_bytes_matches_encoding() {
        let generator = WorkloadGenerator::new(WorkloadConfig {
            payload: PayloadSize::Fixed(128),
            ..WorkloadConfig::default()
        });
        let mut g2 = generator.clone();
        let tx = g2.next_tx();
        assert_eq!(generator.mean_tx_bytes() as usize, tx.encoded_len());
    }

    #[test]
    fn recipients_differ_from_senders() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig::default());
        for tx in generator.batch(100) {
            assert_ne!(tx.sender_address(), tx.recipient());
        }
    }

    #[test]
    fn iterator_interface_works() {
        let generator = WorkloadGenerator::new(WorkloadConfig::default());
        let txs: Vec<Transaction> = generator.take(5).collect();
        assert_eq!(txs.len(), 5);
    }

    /// The bounded keypair cache must not change the stream: a
    /// generator that bypasses the cache (fresh derivation per draw,
    /// the pre-cache behaviour) emits byte-identical transactions.
    #[test]
    fn key_cache_is_transparent() {
        let config = WorkloadConfig {
            accounts: 500,
            senders: SenderDistribution::Zipf { exponent: 1.1 },
            ..WorkloadConfig::default()
        };
        let cached: Vec<Vec<u8>> = WorkloadGenerator::new(config)
            .batch(300)
            .iter()
            .map(Encode::to_bytes)
            .collect();
        let mut uncached_gen = WorkloadGenerator::new(config);
        // Re-deriving every keypair from scratch mirrors pre-cache code.
        let uncached: Vec<Vec<u8>> = (0..300)
            .map(|_| {
                uncached_gen.key_cache.clear();
                Encode::to_bytes(&uncached_gen.next_tx())
            })
            .collect();
        assert_eq!(cached, uncached);
    }

    #[test]
    fn million_account_universe_draws_cheaply() {
        // Construction pays the O(accounts) Zipf table once; draws must
        // not scale with the universe (this test is fast because they
        // don't — a per-draw O(accounts) regression would time out).
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            accounts: 1_000_000,
            senders: SenderDistribution::Zipf { exponent: 1.1 },
            payload: PayloadSize::Fixed(8),
            ..WorkloadConfig::default()
        });
        let txs = generator.batch(2_000);
        assert_eq!(txs.len(), 2_000);
        assert_eq!(generator.emitted(), 2_000);
    }

    #[test]
    fn fee_jitter_spreads_fees_without_breaking_validity() {
        let mut generator = WorkloadGenerator::new(WorkloadConfig {
            fee: 2,
            fee_jitter: 9,
            ..WorkloadConfig::default()
        });
        let genesis = GenesisConfig::uniform(64, 1_000_000);
        let mut state: WorldState = genesis.initial_state();
        let mut seen = std::collections::BTreeSet::new();
        for tx in generator.batch(300) {
            assert!(
                (2..=11).contains(&tx.fee()),
                "fee {} out of range",
                tx.fee()
            );
            seen.insert(tx.fee());
            state
                .apply(&tx, Address::from_seed(999))
                .unwrap_or_else(|e| panic!("generated invalid tx: {e}"));
        }
        assert!(
            seen.len() > 5,
            "jitter produced only {} fee levels",
            seen.len()
        );
    }

    #[test]
    fn traffic_stream_bursts_on_schedule() {
        let generator = WorkloadGenerator::new(WorkloadConfig::default());
        let traffic = TrafficConfig {
            base_txs_per_round: 10,
            burst_every: 4,
            burst_multiplier: 3,
        };
        let mut stream = TrafficStream::new(generator, traffic);
        let sizes: Vec<usize> = (0..8).map(|_| stream.next_round().len()).collect();
        assert_eq!(sizes, vec![10, 10, 10, 30, 10, 10, 10, 30]);
        assert_eq!(stream.round(), 8);
        assert_eq!(stream.generator().emitted(), 120);
    }

    #[test]
    fn traffic_stream_without_bursts_is_flat() {
        let generator = WorkloadGenerator::new(WorkloadConfig::default());
        let traffic = TrafficConfig {
            base_txs_per_round: 5,
            burst_every: 0,
            burst_multiplier: 9,
        };
        let mut stream = TrafficStream::new(generator, traffic);
        assert!(!stream.next_is_burst());
        assert!((0..6).all(|_| stream.next_round().len() == 5));
    }

    #[test]
    fn traffic_stream_is_deterministic() {
        let make = || {
            TrafficStream::new(
                WorkloadGenerator::new(WorkloadConfig {
                    accounts: 1_000,
                    senders: SenderDistribution::Zipf { exponent: 1.0 },
                    ..WorkloadConfig::default()
                }),
                TrafficConfig::default(),
            )
        };
        let a: Vec<_> = make().next_round().iter().map(|t| t.id()).collect();
        let b: Vec<_> = make().next_round().iter().map(|t| t.id()).collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one account")]
    fn zero_accounts_panics() {
        let _ = WorkloadGenerator::new(WorkloadConfig {
            accounts: 0,
            ..WorkloadConfig::default()
        });
    }
}
