//! Flamegraph-style text rendering over the span event ring.
//!
//! Span aggregates ([`crate::snapshot::SpanEntry`]) tell you *how much*
//! time each span name consumed, but not *under which callers*. The
//! event ring buffer keeps the last [`crate::EVENT_CAPACITY`] completed
//! span instances with their nesting depth, which is enough to
//! reconstruct the call tree: spans close in post-order (children
//! before parents), so an event at depth `d` is the parent of every
//! not-yet-claimed event deeper than `d` that closed before it.
//!
//! [`render_flamegraph`] folds identical frames (same name and label
//! under the same parent stack) together, exactly like a classic
//! flamegraph, and renders one line per merged frame: indented name,
//! total wall time, share of the root total, instance count, and a
//! proportional bar. Output is deterministic for a given snapshot,
//! which keeps it golden-testable.

use std::fmt::Write as _;

use crate::snapshot::{EventEntry, TelemetrySnapshot};

/// One merged frame of the reconstructed call tree.
#[derive(Debug)]
struct Frame {
    name: &'static str,
    label: String,
    total_ns: u64,
    count: u64,
    children: Vec<Frame>,
}

/// Reconstructs the call forest from close-ordered span events.
///
/// Maintains, per depth, the nodes still waiting for their parent to
/// close. An event at depth `d` adopts everything pending strictly
/// deeper than `d`. Whatever is left pending at the end (parents still
/// open, or evicted from the ring) is promoted to a root.
fn build_forest(events: &[EventEntry]) -> Vec<Frame> {
    let mut pending: Vec<Vec<Frame>> = Vec::new();
    for event in events {
        let depth = event.depth;
        while pending.len() <= depth + 1 {
            pending.push(Vec::new());
        }
        let mut children = Vec::new();
        for level in pending.iter_mut().skip(depth + 1) {
            children.append(level);
        }
        pending[depth].push(Frame {
            name: event.name,
            label: event.label.clone(),
            total_ns: event.duration_ns,
            count: 1,
            children,
        });
    }
    let mut roots = Vec::new();
    for level in pending {
        roots.extend(level);
    }
    roots
}

/// Merges sibling frames with the same name and label (summing time and
/// counts, recursively), then orders siblings by descending total time
/// with name/label tiebreaks so the rendering is deterministic.
fn fold(frames: Vec<Frame>) -> Vec<Frame> {
    let mut merged: Vec<Frame> = Vec::new();
    for frame in frames {
        match merged
            .iter_mut()
            .find(|m| m.name == frame.name && m.label == frame.label)
        {
            Some(existing) => {
                existing.total_ns = existing.total_ns.saturating_add(frame.total_ns);
                existing.count += frame.count;
                existing.children.extend(frame.children);
            }
            None => merged.push(frame),
        }
    }
    for frame in &mut merged {
        frame.children = fold(std::mem::take(&mut frame.children));
    }
    merged.sort_by(|a, b| {
        b.total_ns
            .cmp(&a.total_ns)
            .then(a.name.cmp(b.name))
            .then(a.label.cmp(&b.label))
    });
    merged
}

/// The frame's display text: `name`, plus ` [label]` when scoped.
fn display(frame: &Frame) -> String {
    if frame.label.is_empty() {
        frame.name.to_string()
    } else {
        format!("{} [{}]", frame.name, frame.label)
    }
}

/// Widest indented display text in the folded forest.
fn measure(frames: &[Frame], depth: usize, widest: &mut usize) {
    for frame in frames {
        *widest = (*widest).max(2 * depth + display(frame).chars().count());
        measure(&frame.children, depth + 1, widest);
    }
}

/// Nanoseconds as fixed-point milliseconds (three decimals).
fn fmt_ns(ns: u64) -> String {
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn render_frame(
    out: &mut String,
    frame: &Frame,
    depth: usize,
    name_width: usize,
    grand_total: u64,
    bar_width: usize,
) {
    let text = format!("{}{}", "  ".repeat(depth), display(frame));
    let pct = frame.total_ns as f64 * 100.0 / grand_total as f64;
    let filled = ((frame.total_ns as u128 * bar_width as u128) / grand_total as u128) as usize;
    let filled = filled.min(bar_width);
    let bar = format!("{}{}", "#".repeat(filled), " ".repeat(bar_width - filled));
    let _ = writeln!(
        out,
        "{text:<name_width$}  {dur:>11}  {pct:>5.1}%  x{count:<4} |{bar}|",
        dur = fmt_ns(frame.total_ns),
        count = frame.count,
    );
    for child in &frame.children {
        render_frame(out, child, depth + 1, name_width, grand_total, bar_width);
    }
}

/// Renders the snapshot's span events as a flamegraph-style text tree.
///
/// `bar_width` is the width of the proportional `#` bar (percentages
/// are relative to the sum of all root frames). Returns a multi-line
/// string ending in a newline; deterministic for a given snapshot.
pub fn render_flamegraph(snapshot: &TelemetrySnapshot, bar_width: usize) -> String {
    let roots = fold(build_forest(&snapshot.events));
    let grand_total: u64 = roots.iter().map(|r| r.total_ns).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flame graph: {} events ({} dropped), {} total",
        snapshot.events.len(),
        snapshot.dropped_events,
        fmt_ns(grand_total)
    );
    if roots.is_empty() {
        out.push_str("  (no span events recorded)\n");
        return out;
    }
    let mut name_width = 0;
    measure(&roots, 0, &mut name_width);
    let grand_total = grand_total.max(1);
    for root in &roots {
        render_frame(&mut out, root, 0, name_width, grand_total, bar_width);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(
        seq: u64,
        name: &'static str,
        label: &str,
        depth: usize,
        start_ns: u64,
        duration_ns: u64,
    ) -> EventEntry {
        EventEntry {
            seq,
            name,
            label: label.to_string(),
            depth,
            start_ns,
            duration_ns,
        }
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let snap = TelemetrySnapshot::default();
        let text = render_flamegraph(&snap, 20);
        assert!(text.contains("0 events"));
        assert!(text.contains("(no span events recorded)"));
    }

    #[test]
    fn forest_reconstruction_nests_by_depth() {
        // Close order: inner, inner, outer, side (post-order).
        let events = vec![
            event(0, "a/inner", "", 1, 10, 40),
            event(1, "a/inner", "", 1, 60, 30),
            event(2, "a/outer", "", 0, 0, 100),
            event(3, "b/side", "", 0, 100, 50),
        ];
        let roots = fold(build_forest(&events));
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "a/outer");
        assert_eq!(roots[0].children.len(), 1);
        assert_eq!(roots[0].children[0].count, 2);
        assert_eq!(roots[0].children[0].total_ns, 70);
        assert_eq!(roots[1].name, "b/side");
    }

    #[test]
    fn orphaned_deep_events_are_promoted_to_roots() {
        // A depth-2 event whose ancestors never closed (e.g. evicted).
        let events = vec![event(0, "x/deep", "", 2, 0, 5)];
        let roots = fold(build_forest(&events));
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "x/deep");
    }

    #[test]
    fn golden_flamegraph_rendering() {
        let snap = TelemetrySnapshot {
            events: vec![
                event(0, "a/inner", "", 1, 10_000_000, 40_000_000),
                event(1, "a/inner", "", 1, 60_000_000, 30_000_000),
                event(2, "a/outer", "", 0, 0, 100_000_000),
                event(3, "b/side", "cluster=1", 0, 100_000_000, 100_000_000),
            ],
            ..TelemetrySnapshot::default()
        };
        let text = render_flamegraph(&snap, 20);
        let expected = "\
flame graph: 4 events (0 dropped), 200.000ms total
a/outer               100.000ms   50.0%  x1    |##########          |
  a/inner              70.000ms   35.0%  x2    |#######             |
b/side [cluster=1]    100.000ms   50.0%  x1    |##########          |
";
        assert_eq!(text, expected);
    }
}
