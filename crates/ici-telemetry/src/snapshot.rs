//! Snapshots and export: JSON (for `results/e*.json`) and CSV.
//!
//! A [`TelemetrySnapshot`] is a plain-data copy of the thread's
//! collector, decoupled from the live registry so exporters can hold it
//! across further recording. The JSON shape is documented in
//! `EXPERIMENTS.md`; `ici-sim`'s `ExperimentRecord` embeds it verbatim
//! as the record's `telemetry` section.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::registry::{with_collector, EVENT_CAPACITY};
use crate::Key;

/// One counter series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterEntry {
    /// Instrument name (`subsystem/operation`).
    pub name: &'static str,
    /// Rendered label (`""`, `"cluster=3"`, ...).
    pub label: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge series.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeEntry {
    /// Instrument name.
    pub name: &'static str,
    /// Rendered label.
    pub label: String,
    /// Last written value.
    pub value: f64,
}

/// One histogram series, reduced to its summary statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramEntry {
    /// Instrument name.
    pub name: &'static str,
    /// Rendered label.
    pub label: String,
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(bucket_index, count)`.
    pub buckets: Vec<(usize, u64)>,
}

/// One span series (aggregated over instances).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEntry {
    /// Span name.
    pub name: &'static str,
    /// Rendered label.
    pub label: String,
    /// Completed instances.
    pub count: u64,
    /// Total wall nanoseconds.
    pub total_ns: u64,
    /// Self (non-child) nanoseconds.
    pub self_ns: u64,
    /// Longest instance, nanoseconds.
    pub max_ns: u64,
}

/// One structured event from the ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventEntry {
    /// Monotonic sequence number.
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Rendered label.
    pub label: String,
    /// Nesting depth at open (0 = root).
    pub depth: usize,
    /// Start offset from the collector epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub duration_ns: u64,
}

/// A plain-data copy of the thread's telemetry state.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Counter series, ascending by (name, label).
    pub counters: Vec<CounterEntry>,
    /// Gauge series.
    pub gauges: Vec<GaugeEntry>,
    /// Histogram series.
    pub histograms: Vec<HistogramEntry>,
    /// Span aggregates.
    pub spans: Vec<SpanEntry>,
    /// Most recent span events (bounded ring buffer).
    pub events: Vec<EventEntry>,
    /// Events evicted from the ring buffer before this snapshot.
    pub dropped_events: u64,
}

/// Copies the current thread's telemetry state. Works regardless of the
/// enabled flag (a disabled thread simply has empty state).
pub fn snapshot() -> TelemetrySnapshot {
    with_collector(|c| TelemetrySnapshot {
        counters: c
            .counters
            .iter()
            .map(|(k, &v)| CounterEntry {
                name: k.name,
                label: k.label.render(),
                value: v,
            })
            .collect(),
        gauges: c
            .gauges
            .iter()
            .map(|(k, &v)| GaugeEntry {
                name: k.name,
                label: k.label.render(),
                value: v,
            })
            .collect(),
        histograms: c
            .hists
            .iter()
            .map(|(k, h)| HistogramEntry {
                name: k.name,
                label: k.label.render(),
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                mean: h.mean(),
                p50: h.percentile(50.0),
                p90: h.percentile(90.0),
                p99: h.percentile(99.0),
                buckets: h.nonzero_buckets(),
            })
            .collect(),
        spans: c
            .spans
            .iter()
            .map(|(k, s)| SpanEntry {
                name: k.name,
                label: k.label.render(),
                count: s.count,
                total_ns: s.total_ns,
                self_ns: s.self_ns,
                max_ns: s.max_ns,
            })
            .collect(),
        events: c
            .events
            .iter()
            .map(|e| EventEntry {
                seq: e.seq,
                name: e.name,
                label: e.label.render(),
                depth: e.depth,
                start_ns: e.start_ns,
                duration_ns: e.duration_ns,
            })
            .collect(),
        dropped_events: c.dropped_events,
    })
    .unwrap_or_default()
}

/// Clears the current thread's telemetry state (instruments, spans,
/// events). Spans still open keep working and record on close.
pub fn reset() {
    with_collector(|c| c.clear());
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// The first span aggregate named `name` (any label).
    pub fn span(&self, name: &str) -> Option<&SpanEntry> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Distinct subsystems (name text before the first `/`) across all
    /// instruments and spans.
    pub fn subsystems(&self) -> BTreeSet<&'static str> {
        let of = |name: &'static str| Key::new(name, crate::Label::Global).subsystem();
        self.counters
            .iter()
            .map(|c| of(c.name))
            .chain(self.gauges.iter().map(|g| of(g.name)))
            .chain(self.histograms.iter().map(|h| of(h.name)))
            .chain(self.spans.iter().map(|s| of(s.name)))
            .collect()
    }

    /// Distinct subsystems that contributed spans specifically.
    pub fn span_subsystems(&self) -> BTreeSet<&'static str> {
        self.spans
            .iter()
            .map(|s| Key::new(s.name, crate::Label::Global).subsystem())
            .collect()
    }

    /// The `n` span aggregates with the largest self time, descending.
    pub fn top_spans_by_self_time(&self, n: usize) -> Vec<&SpanEntry> {
        let mut sorted: Vec<&SpanEntry> = self.spans.iter().collect();
        sorted.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(b.name)));
        sorted.truncate(n);
        sorted
    }

    /// Renders the snapshot as a pretty JSON object at `indent` (the
    /// whitespace prefix of the object's closing brace).
    pub fn write_json(&self, out: &mut String, indent: &str) {
        let inner = format!("{indent}  ");
        let _ = write!(out, "{{\n{inner}\"event_capacity\": {EVENT_CAPACITY},");
        let _ = write!(out, "\n{inner}\"dropped_events\": {},", self.dropped_events);

        let _ = write!(out, "\n{inner}\"counters\": ");
        write_array(out, &inner, &self.counters, |out, c| {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"label\": \"{}\", \"value\": {}}}",
                escape(c.name),
                escape(&c.label),
                c.value
            );
        });
        out.push(',');

        let _ = write!(out, "\n{inner}\"gauges\": ");
        write_array(out, &inner, &self.gauges, |out, g| {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"label\": \"{}\", \"value\": {}}}",
                escape(g.name),
                escape(&g.label),
                fmt_f64(g.value)
            );
        });
        out.push(',');

        let _ = write!(out, "\n{inner}\"histograms\": ");
        write_array(out, &inner, &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"label\": \"{}\", \"count\": {}, \"sum\": {}, \
                 \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \
                 \"p99\": {}, \"buckets\": [",
                escape(h.name),
                escape(&h.label),
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.mean),
                h.p50,
                h.p90,
                h.p99,
            );
            for (i, (b, n)) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{b}, {n}]");
            }
            out.push_str("]}");
        });
        out.push(',');

        let _ = write!(out, "\n{inner}\"spans\": ");
        write_array(out, &inner, &self.spans, |out, s| {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"label\": \"{}\", \"count\": {}, \
                 \"total_ns\": {}, \"self_ns\": {}, \"max_ns\": {}}}",
                escape(s.name),
                escape(&s.label),
                s.count,
                s.total_ns,
                s.self_ns,
                s.max_ns
            );
        });
        out.push(',');

        let _ = write!(out, "\n{inner}\"events\": ");
        write_array(out, &inner, &self.events, |out, e| {
            let _ = write!(
                out,
                "{{\"seq\": {}, \"name\": \"{}\", \"label\": \"{}\", \"depth\": {}, \
                 \"start_ns\": {}, \"duration_ns\": {}}}",
                e.seq,
                escape(e.name),
                escape(&e.label),
                e.depth,
                e.start_ns,
                e.duration_ns
            );
        });

        let _ = write!(out, "\n{indent}}}");
    }

    /// Renders the snapshot as standalone pretty JSON.
    pub fn to_json(&self, indent_level: usize) -> String {
        let mut out = String::new();
        self.write_json(&mut out, &"  ".repeat(indent_level));
        out
    }

    /// Renders instruments and spans as CSV: one section per family,
    /// blank-line separated, headers first.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("family,name,label,value\n");
        for c in &self.counters {
            let _ = writeln!(out, "counter,{},{},{}", c.name, c.label, c.value);
        }
        for g in &self.gauges {
            let _ = writeln!(out, "gauge,{},{},{}", g.name, g.label, fmt_f64(g.value));
        }
        out.push('\n');
        out.push_str("family,name,label,count,sum,min,max,mean,p50,p90,p99\n");
        for h in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{},{},{},{},{},{},{},{},{},{}",
                h.name,
                h.label,
                h.count,
                h.sum,
                h.min,
                h.max,
                fmt_f64(h.mean),
                h.p50,
                h.p90,
                h.p99
            );
        }
        out.push('\n');
        out.push_str("family,name,label,count,total_ns,self_ns,max_ns\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "span,{},{},{},{},{},{}",
                s.name, s.label, s.count, s.total_ns, s.self_ns, s.max_ns
            );
        }
        out
    }
}

fn write_array<T>(
    out: &mut String,
    indent: &str,
    items: &[T],
    mut one: impl FnMut(&mut String, &T),
) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n{indent}  ");
        one(out, item);
    }
    let _ = write!(out, "\n{indent}]");
}

/// Escapes a JSON string body (instrument names and labels contain no
/// exotic characters, but exports must never emit invalid JSON).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Finite float formatting that is valid JSON (no NaN/inf literals).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter_add, observe, set_enabled, Label};

    fn populated() -> TelemetrySnapshot {
        set_enabled(true);
        reset();
        counter_add("a/c", Label::Cluster(1), 4);
        observe("b/h", Label::Global, 300);
        {
            let _g = crate::span_guard("c/s", Label::Global);
        }
        let snap = snapshot();
        set_enabled(false);
        snap
    }

    #[test]
    fn snapshot_copies_all_families() {
        let snap = populated();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.events.len(), 1);
        assert!(!snap.is_empty());
        assert_eq!(
            snap.subsystems().into_iter().collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert_eq!(
            snap.span_subsystems().into_iter().collect::<Vec<_>>(),
            vec!["c"]
        );
    }

    #[test]
    fn json_is_structurally_sound() {
        let snap = populated();
        let json = snap.to_json(0);
        assert!(json.contains("\"counters\": ["));
        assert!(json.contains("\"name\": \"a/c\""));
        assert!(json.contains("\"label\": \"cluster=1\""));
        assert!(json.contains("\"spans\": ["));
        assert!(json.contains("\"p99\": "));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_serializes_empty_arrays() {
        let snap = TelemetrySnapshot::default();
        assert!(snap.is_empty());
        let json = snap.to_json(1);
        assert!(json.contains("\"counters\": []"));
        assert!(json.contains("\"events\": []"));
    }

    #[test]
    fn csv_has_one_row_per_series() {
        let snap = populated();
        let csv = snap.to_csv();
        assert!(csv.contains("counter,a/c,cluster=1,4"));
        assert!(csv.contains("histogram,b/h,"));
        assert!(csv.lines().any(|l| l.starts_with("span,c/s,")));
    }

    #[test]
    fn top_spans_rank_by_self_time() {
        set_enabled(true);
        reset();
        {
            let _a = crate::span_guard("x/slow", Label::Global);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let _b = crate::span_guard("x/fast", Label::Global);
        }
        let snap = snapshot();
        set_enabled(false);
        let top = snap.top_spans_by_self_time(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name, "x/slow");
    }

    /// Pushes `n` span events straight into this thread's collector,
    /// bypassing the process-global enable flag (other tests toggle it
    /// concurrently; the ring itself is thread-local and race-free).
    fn push_raw_events(n: usize) {
        with_collector(|c| {
            for _ in 0..n {
                let event = crate::registry::SpanEvent {
                    seq: c.next_seq,
                    name: "w/wrap",
                    label: crate::Label::Global,
                    depth: 0,
                    start_ns: 0,
                    duration_ns: 1,
                };
                c.next_seq += 1;
                c.push_event(event);
            }
        });
    }

    #[test]
    fn ring_wrap_surfaces_dropped_events_in_snapshot_and_json() {
        reset();
        push_raw_events(EVENT_CAPACITY + 7);
        let snap = snapshot();
        reset();
        assert_eq!(snap.dropped_events, 7, "exactly the overflow is counted");
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        // The survivors are the newest events: the oldest seqs went first.
        assert_eq!(snap.events.first().map(|e| e.seq), Some(7));
        let json = snap.to_json(0);
        assert!(json.contains("\"dropped_events\": 7,"));
        assert!(json.contains(&format!("\"event_capacity\": {EVENT_CAPACITY},")));
    }

    #[test]
    fn drained_deltas_carry_dropped_counts_through_merge() {
        reset();
        push_raw_events(EVENT_CAPACITY + 3);
        let delta = crate::drain_delta();
        assert!(!delta.is_empty());
        // Post-drain the collector is clean; the count lives in the delta.
        assert_eq!(snapshot().dropped_events, 0);
        crate::merge_delta(delta);
        // Merging replays the events through the ring: the 3 drops the
        // worker counted add to the (zero) drops the ring re-incurs.
        let snap = snapshot();
        reset();
        assert_eq!(snap.dropped_events, 3);
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(1.5), "1.5");
    }
}
