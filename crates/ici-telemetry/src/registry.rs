//! The thread-local instrument registry.
//!
//! All telemetry state lives in one thread-local [`Collector`]: typed
//! instruments (counters, gauges, histograms), per-span aggregates, the
//! live span stack, and the bounded event ring buffer. Thread-locality
//! keeps recording lock-free and isolates parallel test threads; the
//! simulator itself is single-threaded, so one collector sees a whole
//! run.
//!
//! Every public recording function is gated on [`crate::enabled`] and
//! is a no-op (one relaxed atomic load) when telemetry is off. Re-entry
//! through `try_borrow_mut` is impossible by construction (no recording
//! call invokes another), but the guard keeps the crate panic-free even
//! if that changes.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use crate::hist::Histogram;
use crate::{Key, Label};

/// Capacity of the structured-event ring buffer. Oldest events are
/// dropped (and counted) beyond this bound.
pub const EVENT_CAPACITY: usize = 4096;

/// Aggregate statistics for one span name+label.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed span instances.
    pub count: u64,
    /// Total wall time across instances, nanoseconds.
    pub total_ns: u64,
    /// Self time: total minus time attributed to child spans.
    pub self_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

/// One completed span instance in the event ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic sequence number (survives ring-buffer eviction).
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Span scope.
    pub label: Label,
    /// Nesting depth at open (0 = root).
    pub depth: usize,
    /// Start offset from the collector's epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub duration_ns: u64,
}

/// A frame of the live span stack: accumulates child wall time so the
/// parent can compute its self time on close.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    pub(crate) child_ns: u64,
}

/// All telemetry state for one thread.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    pub(crate) counters: BTreeMap<Key, u64>,
    pub(crate) gauges: BTreeMap<Key, f64>,
    pub(crate) hists: BTreeMap<Key, Histogram>,
    pub(crate) spans: BTreeMap<Key, SpanStats>,
    pub(crate) stack: Vec<Frame>,
    pub(crate) events: VecDeque<SpanEvent>,
    pub(crate) dropped_events: u64,
    pub(crate) next_seq: u64,
    /// First instant observed; event offsets are relative to it.
    pub(crate) epoch: Option<Instant>,
}

impl Collector {
    pub(crate) fn push_event(&mut self, event: SpanEvent) {
        if self.events.len() >= EVENT_CAPACITY {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(event);
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
        self.spans.clear();
        self.events.clear();
        self.dropped_events = 0;
        self.next_seq = 0;
        self.epoch = None;
        // Live frames are kept: open guards will still pop them.
    }
}

thread_local! {
    pub(crate) static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// Runs `f` with the thread's collector; silently skipped on re-entry.
pub(crate) fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    COLLECTOR.with(|c| c.try_borrow_mut().ok().map(|mut c| f(&mut c)))
}

// The recording entry points are split fast/slow: the `#[inline(always)]`
// wrapper compiles to a relaxed load plus a not-taken branch at every call
// site, and the `#[cold]` body stays out of callers' instruction streams —
// keeping hot protocol loops byte-for-byte close to uninstrumented code.

/// Adds `delta` to the counter `name`/`label`.
#[inline(always)]
pub fn counter_add(name: &'static str, label: Label, delta: u64) {
    if crate::enabled() {
        counter_add_slow(name, label, delta);
    }
}

#[cold]
#[inline(never)]
fn counter_add_slow(name: &'static str, label: Label, delta: u64) {
    with_collector(|c| {
        *c.counters.entry(Key::new(name, label)).or_insert(0) += delta;
    });
}

/// Sets the gauge `name`/`label` to `value` (last write wins).
#[inline(always)]
pub fn gauge_set(name: &'static str, label: Label, value: f64) {
    if crate::enabled() {
        gauge_set_slow(name, label, value);
    }
}

#[cold]
#[inline(never)]
fn gauge_set_slow(name: &'static str, label: Label, value: f64) {
    with_collector(|c| {
        c.gauges.insert(Key::new(name, label), value);
    });
}

/// Records `value` into the histogram `name`/`label`.
#[inline(always)]
pub fn observe(name: &'static str, label: Label, value: u64) {
    if crate::enabled() {
        observe_slow(name, label, value);
    }
}

#[cold]
#[inline(never)]
fn observe_slow(name: &'static str, label: Label, value: u64) {
    with_collector(|c| {
        c.hists
            .entry(Key::new(name, label))
            .or_default()
            .record(value);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, snapshot};

    #[test]
    fn disabled_recording_is_dropped() {
        set_enabled(false);
        crate::reset();
        counter_add("t/disabled", Label::Global, 5);
        gauge_set("t/disabled", Label::Global, 1.0);
        observe("t/disabled", Label::Global, 1);
        set_enabled(true);
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.counters.iter().all(|c| c.name != "t/disabled"));
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_per_label() {
        set_enabled(true);
        crate::reset();
        counter_add("t/c", Label::Cluster(1), 2);
        counter_add("t/c", Label::Cluster(1), 3);
        counter_add("t/c", Label::Cluster(2), 7);
        let snap = snapshot();
        set_enabled(false);
        let values: Vec<u64> = snap
            .counters
            .iter()
            .filter(|c| c.name == "t/c")
            .map(|c| c.value)
            .collect();
        assert_eq!(values, vec![5, 7]);
    }

    #[test]
    fn gauges_keep_last_write() {
        set_enabled(true);
        crate::reset();
        gauge_set("t/g", Label::Global, 1.5);
        gauge_set("t/g", Label::Global, 2.5);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 2.5);
    }

    #[test]
    fn event_ring_buffer_is_bounded() {
        let mut c = Collector::default();
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            c.push_event(SpanEvent {
                seq: i,
                name: "t/e",
                label: Label::Global,
                depth: 0,
                start_ns: i,
                duration_ns: 1,
            });
        }
        assert_eq!(c.events.len(), EVENT_CAPACITY);
        assert_eq!(c.dropped_events, 10);
        assert_eq!(c.events.front().map(|e| e.seq), Some(10));
    }
}
