//! The thread-local instrument registry.
//!
//! All telemetry state lives in one thread-local [`Collector`]: typed
//! instruments (counters, gauges, histograms), per-span aggregates, the
//! live span stack, and the bounded event ring buffer. Thread-locality
//! keeps recording lock-free and isolates parallel test threads; the
//! simulator itself is single-threaded, so one collector sees a whole
//! run.
//!
//! Every public recording function is gated on [`crate::enabled`] and
//! is a no-op (one relaxed atomic load) when telemetry is off. Re-entry
//! through `try_borrow_mut` is impossible by construction (no recording
//! call invokes another), but the guard keeps the crate panic-free even
//! if that changes.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use crate::hist::Histogram;
use crate::{Key, Label};

/// Capacity of the structured-event ring buffer. Oldest events are
/// dropped (and counted) beyond this bound.
pub const EVENT_CAPACITY: usize = 4096;

/// Aggregate statistics for one span name+label.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Completed span instances.
    pub count: u64,
    /// Total wall time across instances, nanoseconds.
    pub total_ns: u64,
    /// Self time: total minus time attributed to child spans.
    pub self_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

/// One completed span instance in the event ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic sequence number (survives ring-buffer eviction).
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Span scope.
    pub label: Label,
    /// Nesting depth at open (0 = root).
    pub depth: usize,
    /// Start offset from the collector's epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall duration, nanoseconds.
    pub duration_ns: u64,
}

/// A frame of the live span stack: accumulates child wall time so the
/// parent can compute its self time on close.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    pub(crate) child_ns: u64,
}

/// All telemetry state for one thread.
#[derive(Debug, Default)]
pub(crate) struct Collector {
    pub(crate) counters: BTreeMap<Key, u64>,
    pub(crate) gauges: BTreeMap<Key, f64>,
    pub(crate) hists: BTreeMap<Key, Histogram>,
    pub(crate) spans: BTreeMap<Key, SpanStats>,
    pub(crate) stack: Vec<Frame>,
    pub(crate) events: VecDeque<SpanEvent>,
    pub(crate) dropped_events: u64,
    pub(crate) next_seq: u64,
    /// First instant observed; event offsets are relative to it.
    pub(crate) epoch: Option<Instant>,
}

impl Collector {
    pub(crate) fn push_event(&mut self, event: SpanEvent) {
        if self.events.len() >= EVENT_CAPACITY {
            self.events.pop_front();
            self.dropped_events += 1;
        }
        self.events.push_back(event);
    }

    pub(crate) fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.hists.clear();
        self.spans.clear();
        self.events.clear();
        self.dropped_events = 0;
        self.next_seq = 0;
        self.epoch = None;
        // Live frames are kept: open guards will still pop them.
    }
}

thread_local! {
    pub(crate) static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// Telemetry state drained from one thread's collector, ready to be
/// merged into another thread's registry.
///
/// Worker threads (see the `ici-par` pool) record into their own
/// thread-local collectors; without an explicit hand-off every counter,
/// histogram, span, and event they produce would be lost when the
/// worker goes idle. A worker calls [`drain_delta`] after finishing a
/// task and ships the delta back with its result; the coordinating
/// thread folds it in with [`merge_delta`]. Merging is commutative for
/// counters/histograms/spans; gauges are last-write-wins, so merge
/// deltas in a deterministic order (the pool merges in chunk order).
#[derive(Clone, Debug, Default)]
pub struct TelemetryDelta {
    pub(crate) counters: BTreeMap<Key, u64>,
    pub(crate) gauges: BTreeMap<Key, f64>,
    pub(crate) hists: BTreeMap<Key, Histogram>,
    pub(crate) spans: BTreeMap<Key, SpanStats>,
    pub(crate) events: Vec<SpanEvent>,
    pub(crate) dropped_events: u64,
}

impl TelemetryDelta {
    /// Whether the delta carries no recorded state at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.dropped_events == 0
    }
}

/// Drains the current thread's recorded telemetry into a portable
/// [`TelemetryDelta`], leaving the collector empty (but keeping its
/// epoch and any live span stack, so open spans still close cleanly).
///
/// Event `start_ns` offsets stay relative to the *origin* thread's
/// epoch; after a merge they order events within one worker's stream
/// but not across threads.
pub fn drain_delta() -> TelemetryDelta {
    with_collector(|c| TelemetryDelta {
        counters: std::mem::take(&mut c.counters),
        gauges: std::mem::take(&mut c.gauges),
        hists: std::mem::take(&mut c.hists),
        spans: std::mem::take(&mut c.spans),
        events: std::mem::take(&mut c.events).into(),
        dropped_events: std::mem::take(&mut c.dropped_events),
    })
    .unwrap_or_default()
}

/// Folds a drained delta into the current thread's collector.
///
/// Counters and histograms add, span aggregates accumulate, gauges take
/// the delta's value (last write wins), and events are appended to the
/// ring buffer with fresh sequence numbers (their relative order within
/// the delta is preserved).
pub fn merge_delta(delta: TelemetryDelta) {
    with_collector(|c| {
        for (k, v) in delta.counters {
            *c.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in delta.gauges {
            c.gauges.insert(k, v);
        }
        for (k, h) in delta.hists {
            c.hists.entry(k).or_default().merge(&h);
        }
        for (k, s) in delta.spans {
            let agg = c.spans.entry(k).or_default();
            agg.count += s.count;
            agg.total_ns = agg.total_ns.saturating_add(s.total_ns);
            agg.self_ns = agg.self_ns.saturating_add(s.self_ns);
            agg.max_ns = agg.max_ns.max(s.max_ns);
        }
        c.dropped_events += delta.dropped_events;
        for mut event in delta.events {
            event.seq = c.next_seq;
            c.next_seq += 1;
            c.push_event(event);
        }
    });
}

/// Runs `f` and returns its result together with the telemetry it
/// recorded on this thread, isolated from state already buffered.
///
/// Pre-existing counters, histograms, spans, and events are held aside
/// and restored before returning; the captured delta is handed to the
/// caller to [`merge_delta`] at a deterministic point (the pipeline
/// commit stage merges stage deltas in fixed stage order). When
/// telemetry is disabled this is a plain call with an empty delta.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, TelemetryDelta) {
    if !crate::enabled() {
        return (f(), TelemetryDelta::default());
    }
    let held = drain_delta();
    let out = f();
    let captured = drain_delta();
    merge_delta(held);
    (out, captured)
}

/// Runs `f` with the thread's collector; silently skipped on re-entry.
pub(crate) fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    COLLECTOR.with(|c| c.try_borrow_mut().ok().map(|mut c| f(&mut c)))
}

// The recording entry points are split fast/slow: the `#[inline(always)]`
// wrapper compiles to a relaxed load plus a not-taken branch at every call
// site, and the `#[cold]` body stays out of callers' instruction streams —
// keeping hot protocol loops byte-for-byte close to uninstrumented code.

/// Adds `delta` to the counter `name`/`label`.
#[inline(always)]
pub fn counter_add(name: &'static str, label: Label, delta: u64) {
    if crate::enabled() {
        counter_add_slow(name, label, delta);
    }
}

#[cold]
#[inline(never)]
fn counter_add_slow(name: &'static str, label: Label, delta: u64) {
    with_collector(|c| {
        *c.counters.entry(Key::new(name, label)).or_insert(0) += delta;
    });
}

/// Sets the gauge `name`/`label` to `value` (last write wins).
#[inline(always)]
pub fn gauge_set(name: &'static str, label: Label, value: f64) {
    if crate::enabled() {
        gauge_set_slow(name, label, value);
    }
}

#[cold]
#[inline(never)]
fn gauge_set_slow(name: &'static str, label: Label, value: f64) {
    with_collector(|c| {
        c.gauges.insert(Key::new(name, label), value);
    });
}

/// Records `value` into the histogram `name`/`label`.
#[inline(always)]
pub fn observe(name: &'static str, label: Label, value: u64) {
    if crate::enabled() {
        observe_slow(name, label, value);
    }
}

#[cold]
#[inline(never)]
fn observe_slow(name: &'static str, label: Label, value: u64) {
    with_collector(|c| {
        c.hists
            .entry(Key::new(name, label))
            .or_default()
            .record(value);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, snapshot};

    #[test]
    fn disabled_recording_is_dropped() {
        set_enabled(false);
        crate::reset();
        counter_add("t/disabled", Label::Global, 5);
        gauge_set("t/disabled", Label::Global, 1.0);
        observe("t/disabled", Label::Global, 1);
        set_enabled(true);
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.counters.iter().all(|c| c.name != "t/disabled"));
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_per_label() {
        set_enabled(true);
        crate::reset();
        counter_add("t/c", Label::Cluster(1), 2);
        counter_add("t/c", Label::Cluster(1), 3);
        counter_add("t/c", Label::Cluster(2), 7);
        let snap = snapshot();
        set_enabled(false);
        let values: Vec<u64> = snap
            .counters
            .iter()
            .filter(|c| c.name == "t/c")
            .map(|c| c.value)
            .collect();
        assert_eq!(values, vec![5, 7]);
    }

    #[test]
    fn gauges_keep_last_write() {
        set_enabled(true);
        crate::reset();
        gauge_set("t/g", Label::Global, 1.5);
        gauge_set("t/g", Label::Global, 2.5);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.gauges[0].value, 2.5);
    }

    #[test]
    fn drain_and_merge_round_trip() {
        set_enabled(true);
        crate::reset();
        counter_add("t/merge_c", Label::Global, 3);
        gauge_set("t/merge_g", Label::Global, 1.5);
        observe("t/merge_h", Label::Global, 10);
        {
            let _g = crate::span_guard("t/merge_s", Label::Global);
        }
        let delta = drain_delta();
        assert!(!delta.is_empty());
        assert!(TelemetryDelta::default().is_empty());
        // The collector is now empty...
        assert!(snapshot().is_empty());
        // ...and merging the delta twice doubles every additive family.
        merge_delta(delta.clone());
        merge_delta(delta);
        let snap = snapshot();
        set_enabled(false);
        let counter = snap
            .counters
            .iter()
            .find(|c| c.name == "t/merge_c")
            .map(|c| c.value);
        assert_eq!(counter, Some(6));
        assert_eq!(snap.gauges[0].value, 1.5);
        assert_eq!(snap.histograms[0].count, 2);
        let span = snap.span("t/merge_s").map(|s| s.count);
        assert_eq!(span, Some(2));
        // Events were re-sequenced monotonically on merge.
        assert_eq!(snap.events.len(), 2);
        assert!(snap.events[0].seq < snap.events[1].seq);
    }

    #[test]
    fn event_ring_buffer_is_bounded() {
        let mut c = Collector::default();
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            c.push_event(SpanEvent {
                seq: i,
                name: "t/e",
                label: Label::Global,
                depth: 0,
                start_ns: i,
                duration_ns: 1,
            });
        }
        assert_eq!(c.events.len(), EVENT_CAPACITY);
        assert_eq!(c.dropped_events, 10);
        assert_eq!(c.events.front().map(|e| e.seq), Some(10));
    }
}
