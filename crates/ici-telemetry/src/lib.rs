//! Workspace-wide tracing, metrics, and profiling.
//!
//! The experiment binaries report end-of-run aggregates (storage,
//! traffic, latency); this crate explains *where* time and bytes go
//! inside a run. It is std-only (hermetic-build policy), panic-free in
//! non-test code, and designed around a hard requirement: **when
//! telemetry is disabled, instrumentation must cost almost nothing** so
//! the simulator's cost model stays honest.
//!
//! Three instrument families, all scoped by an optional [`Label`]
//! (node, cluster, or protocol phase):
//!
//! * **Counters** — monotonic `u64` accumulators ([`counter_add`]).
//! * **Gauges** — last-write-wins `f64` samples ([`gauge_set`]).
//! * **Histograms** — fixed power-of-two bucket distributions for
//!   latencies and sizes ([`observe`]).
//!
//! Plus lightweight **span tracing**: the [`span!`] macro returns an
//! RAII guard built on [`std::time::Instant`]; nested guards form a
//! tree, and each span name accumulates call count, total wall time,
//! *self* time (total minus time spent in child spans), and a bounded
//! ring buffer of structured events.
//!
//! All state is thread-local, so parallel test threads never interfere;
//! a process-global atomic flag gates every recording call. Snapshots
//! export as JSON (riding `ici-sim`'s `results/e*.json` records) or CSV.
//!
//! # Examples
//!
//! ```
//! ici_telemetry::set_enabled(true);
//! ici_telemetry::reset();
//!
//! {
//!     let _outer = ici_telemetry::span!("demo/outer");
//!     let _inner = ici_telemetry::span!("demo/inner", cluster = 3u32);
//!     ici_telemetry::counter_add("demo/widgets", ici_telemetry::Label::Global, 2);
//!     ici_telemetry::observe("demo/bytes", ici_telemetry::Label::Global, 4096);
//! }
//!
//! let snap = ici_telemetry::snapshot();
//! assert_eq!(snap.counters[0].value, 2);
//! assert_eq!(snap.spans.len(), 2);
//! assert!(snap.to_json(0).contains("demo/outer"));
//! ici_telemetry::set_enabled(false);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flame;
pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

pub use flame::render_flamegraph;
pub use hist::Histogram;
pub use registry::{
    capture, counter_add, drain_delta, gauge_set, merge_delta, observe, TelemetryDelta,
    EVENT_CAPACITY,
};
pub use snapshot::{
    reset, snapshot, CounterEntry, EventEntry, GaugeEntry, HistogramEntry, SpanEntry,
    TelemetrySnapshot,
};
pub use span::{span_guard, SpanGuard};

/// Process-wide enable flag. Every recording call loads it with relaxed
/// ordering and bails out immediately when off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Environment variable consulted by [`init_from_env`].
pub const ENV_VAR: &str = "ICI_TELEMETRY";

/// Turns telemetry collection on or off for the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry collection is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables telemetry when `ICI_TELEMETRY` is set to `1` or `true`.
/// Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    let on = std::env::var(ENV_VAR)
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false);
    if on {
        set_enabled(true);
    }
    enabled()
}

/// Scope of an instrument: which node, cluster, or protocol phase a
/// sample belongs to. `Global` means unscoped.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Label {
    /// No scope — a workspace-wide aggregate.
    Global,
    /// Scoped to one node id.
    Node(u64),
    /// Scoped to one cluster id.
    Cluster(u64),
    /// Scoped to a named protocol phase (or message class).
    Phase(&'static str),
}

impl Label {
    /// Renders the label as a `key=value` string; empty for `Global`.
    pub fn render(&self) -> String {
        match self {
            Label::Global => String::new(),
            Label::Node(n) => format!("node={n}"),
            Label::Cluster(c) => format!("cluster={c}"),
            Label::Phase(p) => format!("phase={p}"),
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(&self.render())
    }
}

/// Instrument identity: a static name plus a [`Label`] scope.
///
/// Names use a `subsystem/operation` convention (`"consensus/pbft_round"`,
/// `"crypto/rs_encode"`) so exports can group by subsystem.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Key {
    /// Instrument name, `subsystem/operation`.
    pub name: &'static str,
    /// Scope of this series.
    pub label: Label,
}

impl Key {
    /// Builds a key.
    pub fn new(name: &'static str, label: Label) -> Key {
        Key { name, label }
    }

    /// The `subsystem` half of the name (text before the first `/`).
    pub fn subsystem(&self) -> &'static str {
        match self.name.split_once('/') {
            Some((s, _)) => s,
            None => self.name,
        }
    }
}

/// Opens a traced span. Expands to a call returning a [`SpanGuard`];
/// bind it (`let _span = span!(..)`) so it lives to the end of scope.
///
/// Forms:
///
/// * `span!("name")` — unscoped;
/// * `span!("name", cluster = id)` — scoped to a cluster;
/// * `span!("name", node = id)` — scoped to a node;
/// * `span!("name", phase = "prepare")` — scoped to a phase.
///
/// When telemetry is disabled the guard is inert and the expansion costs
/// one relaxed atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_guard($name, $crate::Label::Global)
    };
    ($name:expr, cluster = $v:expr) => {
        $crate::span_guard($name, $crate::Label::Cluster(u64::from($v)))
    };
    ($name:expr, node = $v:expr) => {
        $crate::span_guard($name, $crate::Label::Node(u64::from($v)))
    };
    ($name:expr, phase = $v:expr) => {
        $crate::span_guard($name, $crate::Label::Phase($v))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_flag_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn labels_render_compactly() {
        assert_eq!(Label::Global.render(), "");
        assert_eq!(Label::Node(7).render(), "node=7");
        assert_eq!(Label::Cluster(2).render(), "cluster=2");
        assert_eq!(Label::Phase("prepare").render(), "phase=prepare");
        assert_eq!(format!("{:<10}|", Label::Node(7)), "node=7    |");
    }

    #[test]
    fn key_subsystem_is_the_prefix() {
        assert_eq!(
            Key::new("consensus/pbft_round", Label::Global).subsystem(),
            "consensus"
        );
        assert_eq!(Key::new("plain", Label::Global).subsystem(), "plain");
    }

    #[test]
    fn keys_order_by_name_then_label() {
        let a = Key::new("a", Label::Cluster(1));
        let b = Key::new("a", Label::Cluster(2));
        let c = Key::new("b", Label::Global);
        assert!(a < b && b < c);
    }

    #[test]
    fn init_from_env_defaults_off() {
        std::env::remove_var(ENV_VAR);
        set_enabled(false);
        assert!(!init_from_env());
    }
}
