//! Span tracing: RAII guards over [`Instant`].
//!
//! A span measures one dynamic extent of a named operation. Guards nest:
//! while a guard is live, any guard opened on the same thread is its
//! child, and on close a parent learns how much of its wall time was
//! spent inside children — the exported *self time* is what the span
//! itself cost. Aggregates land in the registry keyed by name+label;
//! each completed instance also lands in the bounded event ring buffer
//! with its depth and start offset, preserving the tree shape.

use std::time::Instant;

use crate::registry::{with_collector, Frame, SpanEvent, SpanStats};
use crate::{Key, Label};

/// RAII guard for one span instance; closes (and records) on drop.
///
/// Created by [`span_guard`] or the [`crate::span!`] macro. Inert when
/// telemetry was disabled at open time.
#[must_use = "binding the guard keeps the span open until end of scope"]
#[derive(Debug)]
pub struct SpanGuard {
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    label: Label,
    started: Instant,
    start_ns: u64,
    depth: usize,
}

/// Opens a span. Prefer the [`crate::span!`] macro, which adds label
/// sugar. When telemetry is disabled the returned guard is inert and
/// this call performs one relaxed atomic load; the recording body is
/// `#[cold]`-outlined so it never bloats the caller's instruction stream.
#[inline(always)]
pub fn span_guard(name: &'static str, label: Label) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { open: None };
    }
    open_span(name, label)
}

#[cold]
#[inline(never)]
fn open_span(name: &'static str, label: Label) -> SpanGuard {
    // lint:allow(wall-clock) -- span timing measures the host, never
    // feeds protocol state; exported metrics carry counts, not times
    let started = Instant::now();
    let open = with_collector(|c| {
        let epoch = *c.epoch.get_or_insert(started);
        let depth = c.stack.len();
        c.stack.push(Frame::default());
        let start_ns = saturating_ns(started.duration_since(epoch).as_nanos());
        (start_ns, depth)
    });
    match open {
        Some((start_ns, depth)) => SpanGuard {
            open: Some(OpenSpan {
                name,
                label,
                started,
                start_ns,
                depth,
            }),
        },
        None => SpanGuard { open: None },
    }
}

fn saturating_ns(ns: u128) -> u64 {
    u64::try_from(ns).unwrap_or(u64::MAX)
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            close_span(open);
        }
    }
}

#[cold]
#[inline(never)]
fn close_span(open: OpenSpan) {
    let elapsed_ns = saturating_ns(open.started.elapsed().as_nanos());
    with_collector(|c| {
        // The frame pushed at open; an unbalanced stack (reset with
        // guards live) degrades to zero child time rather than
        // misattributing another frame's.
        let child_ns = if c.stack.len() > open.depth {
            c.stack.pop().map(|f| f.child_ns).unwrap_or(0)
        } else {
            0
        };
        let self_ns = elapsed_ns.saturating_sub(child_ns);
        if let Some(parent) = c.stack.last_mut() {
            parent.child_ns = parent.child_ns.saturating_add(elapsed_ns);
        }
        let stats = c
            .spans
            .entry(Key::new(open.name, open.label))
            .or_insert_with(SpanStats::default);
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(elapsed_ns);
        stats.self_ns = stats.self_ns.saturating_add(self_ns);
        stats.max_ns = stats.max_ns.max(elapsed_ns);
        let seq = c.next_seq;
        c.next_seq += 1;
        c.push_event(SpanEvent {
            seq,
            name: open.name,
            label: open.label,
            depth: open.depth,
            start_ns: open.start_ns,
            duration_ns: elapsed_ns,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_enabled, snapshot};

    fn spin(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < us as u128 {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_span_records_nothing() {
        set_enabled(false);
        crate::reset();
        {
            let _g = span_guard("t/never", Label::Global);
        }
        set_enabled(true);
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.spans.iter().all(|s| s.name != "t/never"));
    }

    #[test]
    fn nested_spans_split_self_and_child_time() {
        set_enabled(true);
        crate::reset();
        {
            let _outer = span_guard("t/outer", Label::Global);
            spin(200);
            {
                let _inner = span_guard("t/inner", Label::Global);
                spin(400);
            }
            spin(100);
        }
        let snap = snapshot();
        set_enabled(false);
        let outer = snap.span("t/outer").expect("outer recorded");
        let inner = snap.span("t/inner").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        // Outer self time excludes the inner 400 µs.
        assert!(
            outer.self_ns < outer.total_ns,
            "outer self {} vs total {}",
            outer.self_ns,
            outer.total_ns
        );
        assert!(
            outer.self_ns <= outer.total_ns - inner.total_ns,
            "child time not deducted"
        );
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn events_preserve_tree_shape() {
        set_enabled(true);
        crate::reset();
        {
            let _a = span_guard("t/a", Label::Cluster(1));
            let _b = span_guard("t/b", Label::Global);
        }
        let snap = snapshot();
        set_enabled(false);
        let a = snap.events.iter().find(|e| e.name == "t/a").expect("a");
        let b = snap.events.iter().find(|e| e.name == "t/b").expect("b");
        assert_eq!(a.depth, 0);
        assert_eq!(b.depth, 1);
        assert!(b.seq < a.seq, "inner closes first");
        assert_eq!(a.label, "cluster=1");
    }

    #[test]
    fn repeated_spans_aggregate() {
        set_enabled(true);
        crate::reset();
        for _ in 0..5 {
            let _g = span_guard("t/rep", Label::Global);
        }
        let snap = snapshot();
        set_enabled(false);
        let rep = snap.span("t/rep").expect("recorded");
        assert_eq!(rep.count, 5);
        assert!(rep.max_ns <= rep.total_ns);
    }
}
