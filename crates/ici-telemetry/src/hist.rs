//! Fixed-bucket histograms for latencies and sizes.
//!
//! Buckets are powers of two: bucket 0 holds the value `0`, bucket `b`
//! (for `b >= 1`) holds values in `[2^(b-1), 2^b - 1]`. 64 buckets cover
//! the full `u64` range with no allocation and O(1) recording, which is
//! what a hot-path instrument needs. Count, sum, min, and max are exact;
//! percentiles are estimated from bucket boundaries (within 2× — plenty
//! to locate an imbalance, per-phase stall, or oversized payload).

/// Number of buckets; covers all of `u64`.
pub const BUCKETS: usize = 64;

/// A power-of-two-bucket histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Index of the bucket holding `value`: its bit length, capped.
fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(BUCKETS - 1)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `p`-th percentile (`0 < p <= 100`): the upper bound of
    /// the bucket containing the `ceil(p% · count)`-th sample, clamped
    /// into the exact `[min, max]` envelope. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
            .collect()
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn bucket_indices_are_bit_lengths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1115);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 278.75).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_within_bucket_resolution() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        // The 500th sample sits in bucket [256, 511]; estimate is the
        // bucket's upper bound.
        assert!((256..=511).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((512..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn percentile_clamps_to_envelope() {
        let mut h = Histogram::new();
        h.record(700);
        // Single sample: every percentile is that sample.
        assert_eq!(h.percentile(1.0), 700);
        assert_eq!(h.percentile(99.0), 700);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(4);
        let mut b = Histogram::new();
        b.record(1_000_000);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1_000_000);
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn saturating_sum_does_not_wrap() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }
}
