//! The check loop: generate, falsify, shrink, report.

use std::fmt;

use ici_rng::{SplitMix64, Xoshiro256};

use crate::repro::{sanitize, Reproducer};
use crate::shrink::Shrink;

/// Harness parameters. `seed` fans out into one independent case seed
/// per case through [`SplitMix64`], so inserting a case never reshuffles
/// the ones after it — each case regenerates from its own seed alone,
/// which is what makes reproducer files self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Config {
    /// Master seed of the whole check.
    pub seed: u64,
    /// Cases to generate and test.
    pub cases: usize,
    /// Budget of property evaluations the shrink loop may spend.
    pub max_shrink_steps: usize,
}

impl Default for Config {
    /// 32 cases under seed `0x70726f70` (`"prop"`), shrink budget 1024.
    fn default() -> Config {
        Config {
            seed: 0x7072_6f70,
            cases: 32,
            max_shrink_steps: 1024,
        }
    }
}

/// A passed check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pass {
    /// The property's name.
    pub property: String,
    /// Cases that ran (all of them, since none failed).
    pub cases: usize,
}

/// A falsified property, already shrunk to a local minimum.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure<T> {
    /// The property's name.
    pub property: String,
    /// The check's master seed.
    pub config_seed: u64,
    /// Which case (0-based) first failed.
    pub case_index: usize,
    /// The failing case's own seed — regenerates it directly.
    pub case_seed: u64,
    /// The case as generated, before shrinking.
    pub original: T,
    /// The smallest still-failing case the shrink budget found.
    pub minimal: T,
    /// The property's message for `minimal`.
    pub message: String,
    /// Accepted candidate index per shrink round; replaying this path
    /// from `original` rebuilds `minimal` exactly.
    pub shrink_path: Vec<usize>,
    /// Property evaluations the shrink loop spent.
    pub shrink_steps: usize,
}

impl<T: fmt::Debug> Failure<T> {
    /// The failure as a replayable reproducer record.
    pub fn reproducer(&self) -> Reproducer {
        Reproducer {
            property: sanitize(&self.property),
            config_seed: self.config_seed,
            case_index: self.case_index,
            case_seed: self.case_seed,
            shrink_path: self.shrink_path.clone(),
            message: sanitize(&self.message),
            minimal: sanitize(&format!("{:?}", self.minimal)),
        }
    }
}

impl<T: fmt::Debug> fmt::Display for Failure<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "property `{}` falsified at case {} (seed {:#x}): {}\n  minimal (after {} of path {:?}): {:?}",
            self.property,
            self.case_index,
            self.case_seed,
            self.message,
            self.shrink_steps,
            self.shrink_path,
            self.minimal,
        )
    }
}

/// Checks `prop` over `config.cases` generated values.
///
/// Each case draws from a fresh [`Xoshiro256`] seeded with the case's
/// [`SplitMix64`]-derived seed. On the first failure the case is shrunk
/// greedily: candidates from [`Shrink::shrink_candidates`] are tried in
/// order and the first still-failing candidate is descended into, until
/// the value is fully shrunk or the step budget runs out. Later cases
/// are not examined — the point of a failure is the minimal reproducer,
/// not a census.
///
/// # Errors
///
/// The shrunk [`Failure`] for the first falsified case.
pub fn check<T, G, P>(
    property: &str,
    config: &Config,
    generate: G,
    prop: P,
) -> Result<Pass, Failure<T>>
where
    T: Shrink + fmt::Debug,
    G: Fn(&mut Xoshiro256) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    let mut seeds = SplitMix64::new(config.seed);
    for case_index in 0..config.cases {
        let case_seed = seeds.next_u64();
        let mut rng = Xoshiro256::seed_from_u64(case_seed);
        let value = generate(&mut rng);
        if let Err(first_message) = prop(&value) {
            let (minimal, message, shrink_path, shrink_steps) =
                shrink_failure(&value, first_message, config.max_shrink_steps, &prop);
            return Err(Failure {
                property: property.to_string(),
                config_seed: config.seed,
                case_index,
                case_seed,
                original: value,
                minimal,
                message,
                shrink_path,
                shrink_steps,
            });
        }
    }
    Ok(Pass {
        property: property.to_string(),
        cases: config.cases,
    })
}

/// Greedy descent from `value`; returns the minimum, its message, the
/// accepted-candidate path, and the evaluations spent.
fn shrink_failure<T, P>(
    value: &T,
    first_message: String,
    max_steps: usize,
    prop: &P,
) -> (T, String, Vec<usize>, usize)
where
    T: Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut current = value.clone();
    let mut message = first_message;
    let mut path = Vec::new();
    let mut steps = 0;
    loop {
        let mut advanced = false;
        for (index, candidate) in current.shrink_candidates().into_iter().enumerate() {
            if steps >= max_steps {
                return (current, message, path, steps);
            }
            steps += 1;
            if let Err(msg) = prop(&candidate) {
                current = candidate;
                message = msg;
                path.push(index);
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (current, message, path, steps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_under_100() -> impl Fn(&Vec<u64>) -> Result<(), String> {
        |xs: &Vec<u64>| {
            let sum: u64 = xs.iter().sum();
            if sum < 100 {
                Ok(())
            } else {
                Err(format!("sum = {sum}"))
            }
        }
    }

    fn gen_vec(rng: &mut Xoshiro256) -> Vec<u64> {
        let len = rng.gen_range(1usize..8);
        (0..len).map(|_| rng.gen_range(0u64..40)).collect()
    }

    #[test]
    fn passing_properties_report_all_cases() {
        let pass = check(
            "u64 halves are smaller",
            &Config::default(),
            |rng| rng.next_u64() | 1,
            |v: &u64| {
                if v / 2 < *v {
                    Ok(())
                } else {
                    Err("half".into())
                }
            },
        )
        .expect("property holds");
        assert_eq!(pass.cases, 32);
        assert_eq!(pass.property, "u64 halves are smaller");
    }

    #[test]
    fn failures_shrink_to_a_local_minimum_that_still_fails() {
        let config = Config {
            seed: 7,
            cases: 64,
            ..Config::default()
        };
        let failure =
            check("sum bound", &config, gen_vec, sum_under_100()).expect_err("falsifiable");
        let minimal_sum: u64 = failure.minimal.iter().sum();
        assert!(minimal_sum >= 100, "minimal case must still fail");
        assert!(failure.minimal.len() <= failure.original.len());
        // Local minimum: every candidate of the minimum passes (unless
        // the budget ran out, which this small case never hits).
        assert!(failure.shrink_steps < config.max_shrink_steps);
        for candidate in failure.minimal.shrink_candidates() {
            assert!(sum_under_100()(&candidate).is_ok());
        }
        assert!(failure.message.starts_with("sum = "));
    }

    #[test]
    fn same_seed_same_failure_byte_for_byte() {
        let config = Config {
            seed: 7,
            cases: 64,
            ..Config::default()
        };
        let a = check("sum bound", &config, gen_vec, sum_under_100()).expect_err("fails");
        let b = check("sum bound", &config, gen_vec, sum_under_100()).expect_err("fails");
        assert_eq!(a, b);
        assert_eq!(a.reproducer().to_text(), b.reproducer().to_text());
    }

    #[test]
    fn replaying_the_path_from_the_original_rebuilds_the_minimum() {
        let config = Config {
            seed: 7,
            cases: 64,
            ..Config::default()
        };
        let failure = check("sum bound", &config, gen_vec, sum_under_100()).expect_err("fails");
        let mut value = failure.original.clone();
        for index in &failure.shrink_path {
            value = value.shrink_candidates().swap_remove(*index);
        }
        assert_eq!(value, failure.minimal);
    }

    #[test]
    fn shrink_budget_is_respected() {
        let config = Config {
            seed: 7,
            cases: 64,
            max_shrink_steps: 3,
        };
        let failure = check("sum bound", &config, gen_vec, sum_under_100()).expect_err("fails");
        assert!(failure.shrink_steps <= 3);
        let unlimited = check(
            "sum bound",
            &Config {
                seed: 7,
                cases: 64,
                ..Config::default()
            },
            gen_vec,
            sum_under_100(),
        )
        .expect_err("fails");
        assert!(unlimited.shrink_steps > 3, "budget actually cut the loop");
    }

    #[test]
    fn case_seeds_are_independent_of_case_count() {
        // Case k's seed depends only on the master seed and k: widening
        // the sweep cannot change which value case 3 regenerates.
        let narrow = Config {
            seed: 9,
            cases: 4,
            ..Config::default()
        };
        let wide = Config {
            seed: 9,
            cases: 400,
            ..Config::default()
        };
        let f = |config: &Config| {
            check("always fails past 3", config, gen_vec, |xs: &Vec<u64>| {
                if xs.is_empty() {
                    Ok(())
                } else {
                    Err("nonempty".into())
                }
            })
            .expect_err("fails")
        };
        assert_eq!(f(&narrow).case_seed, f(&wide).case_seed);
    }
}
