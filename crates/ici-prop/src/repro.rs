//! Reproducer files — failures that replay by seed and path alone.
//!
//! A [`Reproducer`] is the persistent form of a shrunk
//! [`crate::Failure`]: a small `key = value` text record naming the
//! property, the failing case's seed, and the shrink path the runner
//! descended. Replaying does **not** re-run the whole sweep — the case
//! regenerates directly from `case_seed`, the recorded candidate
//! indices are walked, and the property must still fail at the end. A
//! committed `.repro` file is therefore a regression test that costs
//! one generator call and `path + 1` property evaluations.
//!
//! The text form is canonical: parsing and re-serialising a valid file
//! is byte-identity, and the same failure always serialises to the same
//! bytes, so CI can diff reproducers across runs and thread counts.

use std::fmt;

use ici_rng::Xoshiro256;

use crate::shrink::Shrink;

/// Format tag expected on the first line.
const HEADER: &str = "# ici-prop reproducer v1";

/// A replayable record of one shrunk property failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reproducer {
    /// The property's name (single line).
    pub property: String,
    /// Master seed of the check that found the failure (provenance).
    pub config_seed: u64,
    /// Which case of that check failed (provenance).
    pub case_index: usize,
    /// The failing case's own seed — regenerates it without the sweep.
    pub case_seed: u64,
    /// Accepted candidate index per shrink round.
    pub shrink_path: Vec<usize>,
    /// The property's message for the minimal case (single line).
    pub message: String,
    /// `Debug` render of the minimal case, for humans and drift checks.
    pub minimal: String,
}

/// Why a reproducer could not be loaded or replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReproError {
    /// The text is not a valid v1 reproducer.
    Parse {
        /// 1-based line of the offending text.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A recorded candidate index fell outside the candidates the
    /// regenerated value actually proposes — generator or shrinker
    /// drifted since the file was written.
    PathOutOfRange {
        /// 0-based shrink round.
        step: usize,
        /// The recorded index.
        index: usize,
        /// Candidates available at that round.
        available: usize,
    },
    /// The replayed minimal case passes now — the bug this file pinned
    /// is gone (delete the file) or the property drifted.
    NoLongerFails,
}

impl fmt::Display for ReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproError::Parse { line, reason } => {
                write!(f, "reproducer parse error at line {line}: {reason}")
            }
            ReproError::PathOutOfRange {
                step,
                index,
                available,
            } => write!(
                f,
                "shrink path step {step} wants candidate {index} but only {available} exist \
                 — generator or shrinker drifted since this reproducer was written"
            ),
            ReproError::NoLongerFails => {
                write!(f, "replayed minimal case no longer fails the property")
            }
        }
    }
}

impl std::error::Error for ReproError {}

/// A successful replay: the case still fails.
#[derive(Clone, Debug, PartialEq)]
pub struct Replay<T> {
    /// The minimal case, rebuilt from seed and path.
    pub minimal: T,
    /// The property's failure message for it, as produced *now*.
    pub message: String,
    /// Whether the rebuilt case's `Debug` render still matches the
    /// recorded `minimal` line. A mismatch with a still-failing case
    /// means the generator changed shape but the bug survives.
    pub render_matches: bool,
}

/// Collapses a string onto one line for the `key = value` format.
pub fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_control() { ' ' } else { c })
        .collect()
}

impl Reproducer {
    /// Serialises to the canonical text form.
    pub fn to_text(&self) -> String {
        let path: Vec<String> = self.shrink_path.iter().map(|i| i.to_string()).collect();
        format!(
            "{HEADER}\nproperty = {}\nconfig_seed = {}\ncase_index = {}\ncase_seed = {}\nshrink_path = {}\nmessage = {}\nminimal = {}\n",
            sanitize(&self.property),
            self.config_seed,
            self.case_index,
            self.case_seed,
            path.join(","),
            sanitize(&self.message),
            sanitize(&self.minimal),
        )
    }

    /// Parses the canonical text form.
    ///
    /// # Errors
    ///
    /// [`ReproError::Parse`] naming the first offending line.
    pub fn parse(text: &str) -> Result<Reproducer, ReproError> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first.trim_end() == HEADER => {}
            Some((_, first)) => {
                return Err(ReproError::Parse {
                    line: 1,
                    reason: format!("expected `{HEADER}`, found `{first}`"),
                })
            }
            None => {
                return Err(ReproError::Parse {
                    line: 1,
                    reason: "empty file".to_string(),
                })
            }
        }
        let mut property = None;
        let mut config_seed = None;
        let mut case_index = None;
        let mut case_seed = None;
        let mut shrink_path = None;
        let mut message = None;
        let mut minimal = None;
        for (at, raw) in lines {
            let line_no = at + 1;
            let line = raw.trim_end();
            if line.is_empty() {
                continue;
            }
            // An empty value serialises as `key = ` and trims to `key =`.
            let (key, value) = match line.split_once(" = ") {
                Some(kv) => kv,
                None => match line.strip_suffix(" =") {
                    Some(key) => (key, ""),
                    None => {
                        return Err(ReproError::Parse {
                            line: line_no,
                            reason: format!("expected `key = value`, found `{line}`"),
                        })
                    }
                },
            };
            let parse_u64 = |value: &str| {
                value.parse::<u64>().map_err(|_| ReproError::Parse {
                    line: line_no,
                    reason: format!("`{key}` is not an unsigned integer: `{value}`"),
                })
            };
            match key {
                "property" => property = Some(value.to_string()),
                "config_seed" => config_seed = Some(parse_u64(value)?),
                "case_index" => case_index = Some(parse_u64(value)? as usize),
                "case_seed" => case_seed = Some(parse_u64(value)?),
                "shrink_path" => {
                    let mut path = Vec::new();
                    if !value.is_empty() {
                        for part in value.split(',') {
                            path.push(parse_u64(part.trim())? as usize);
                        }
                    }
                    shrink_path = Some(path);
                }
                "message" => message = Some(value.to_string()),
                "minimal" => minimal = Some(value.to_string()),
                other => {
                    return Err(ReproError::Parse {
                        line: line_no,
                        reason: format!("unknown key `{other}`"),
                    })
                }
            }
        }
        let require = |name: &str, present: bool| {
            if present {
                Ok(())
            } else {
                Err(ReproError::Parse {
                    line: 1,
                    reason: format!("missing `{name}`"),
                })
            }
        };
        require("property", property.is_some())?;
        require("config_seed", config_seed.is_some())?;
        require("case_index", case_index.is_some())?;
        require("case_seed", case_seed.is_some())?;
        require("shrink_path", shrink_path.is_some())?;
        require("message", message.is_some())?;
        require("minimal", minimal.is_some())?;
        Ok(Reproducer {
            property: property.unwrap_or_default(),
            config_seed: config_seed.unwrap_or_default(),
            case_index: case_index.unwrap_or_default(),
            case_seed: case_seed.unwrap_or_default(),
            shrink_path: shrink_path.unwrap_or_default(),
            message: message.unwrap_or_default(),
            minimal: minimal.unwrap_or_default(),
        })
    }

    /// Replays the record: regenerate from `case_seed`, walk the shrink
    /// path, and demand the property still fail.
    ///
    /// # Errors
    ///
    /// [`ReproError::PathOutOfRange`] if the recorded path no longer
    /// fits the generator/shrinker, [`ReproError::NoLongerFails`] if the
    /// rebuilt minimal case passes.
    pub fn replay<T, G, P>(&self, generate: G, prop: P) -> Result<Replay<T>, ReproError>
    where
        T: Shrink + fmt::Debug,
        G: Fn(&mut Xoshiro256) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        let mut rng = Xoshiro256::seed_from_u64(self.case_seed);
        let mut value = generate(&mut rng);
        for (step, index) in self.shrink_path.iter().enumerate() {
            let mut candidates = value.shrink_candidates();
            let available = candidates.len();
            if *index >= available {
                return Err(ReproError::PathOutOfRange {
                    step,
                    index: *index,
                    available,
                });
            }
            value = candidates.swap_remove(*index);
        }
        match prop(&value) {
            Ok(()) => Err(ReproError::NoLongerFails),
            Err(message) => {
                let render_matches = sanitize(&format!("{value:?}")) == self.minimal;
                Ok(Replay {
                    minimal: value,
                    message,
                    render_matches,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{check, Config};

    fn sum_under_100(xs: &Vec<u64>) -> Result<(), String> {
        let sum: u64 = xs.iter().sum();
        if sum < 100 {
            Ok(())
        } else {
            Err(format!("sum = {sum}"))
        }
    }

    fn gen_vec(rng: &mut Xoshiro256) -> Vec<u64> {
        let len = rng.gen_range(1usize..8);
        (0..len).map(|_| rng.gen_range(0u64..40)).collect()
    }

    fn failing_repro() -> Reproducer {
        let config = Config {
            seed: 7,
            cases: 64,
            ..Config::default()
        };
        check("sum bound", &config, gen_vec, sum_under_100)
            .expect_err("falsifiable")
            .reproducer()
    }

    #[test]
    fn text_round_trips_byte_identically() {
        let repro = failing_repro();
        let text = repro.to_text();
        let parsed = Reproducer::parse(&text).expect("parses");
        assert_eq!(parsed, repro);
        assert_eq!(parsed.to_text(), text, "canonical form is a fixpoint");
    }

    #[test]
    fn replay_rebuilds_a_still_failing_minimal_case() {
        let repro = failing_repro();
        let replay = repro.replay(gen_vec, sum_under_100).expect("still fails");
        assert!(replay.render_matches, "{replay:?} vs {}", repro.minimal);
        assert_eq!(replay.message, repro.message);
        let sum: u64 = replay.minimal.iter().sum();
        assert!(sum >= 100);
    }

    #[test]
    fn replay_flags_a_fixed_bug() {
        let repro = failing_repro();
        assert_eq!(
            repro.replay(gen_vec, |_: &Vec<u64>| Ok(())),
            Err(ReproError::NoLongerFails)
        );
    }

    #[test]
    fn replay_flags_generator_drift() {
        let mut repro = failing_repro();
        repro.shrink_path = vec![usize::MAX];
        assert!(matches!(
            repro.replay(gen_vec, sum_under_100),
            Err(ReproError::PathOutOfRange { step: 0, .. })
        ));
    }

    #[test]
    fn parse_rejects_malformed_text() {
        assert!(matches!(
            Reproducer::parse(""),
            Err(ReproError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            Reproducer::parse("# wrong header\n"),
            Err(ReproError::Parse { line: 1, .. })
        ));
        let text = failing_repro().to_text();
        let broken = text.replace("case_seed = ", "case_seed = x");
        assert!(matches!(
            Reproducer::parse(&broken),
            Err(ReproError::Parse { .. })
        ));
        let missing = text.replace("message = ", "msg = ");
        assert!(matches!(
            Reproducer::parse(&missing),
            Err(ReproError::Parse { .. })
        ));
    }

    #[test]
    fn sanitize_flattens_control_characters() {
        assert_eq!(sanitize("a\nb\tc"), "a b c");
        assert_eq!(sanitize("plain"), "plain");
    }

    #[test]
    fn empty_shrink_path_round_trips() {
        let repro = Reproducer {
            property: "p".into(),
            config_seed: 1,
            case_index: 0,
            case_seed: 2,
            shrink_path: Vec::new(),
            message: "m".into(),
            minimal: "[]".into(),
        };
        let parsed = Reproducer::parse(&repro.to_text()).expect("parses");
        assert_eq!(parsed.shrink_path, Vec::<usize>::new());
    }
}
