//! Deterministic shrinking.
//!
//! [`Shrink::shrink_candidates`] proposes strictly "smaller" variants of
//! a value, best candidates first. The runner tries them in order and
//! greedily descends into the first one that still fails, so the
//! candidate *order* is part of the reproducer contract: a given value
//! must always propose the same candidates in the same order. All
//! implementations here are pure and bounded — a candidate list never
//! exceeds a few dozen entries, keeping the shrink loop's work
//! proportional to the recorded path, not to the value's size.

/// Types that can propose smaller versions of themselves.
pub trait Shrink: Sized + Clone {
    /// Smaller candidate values, best (smallest) first. An empty vector
    /// means the value is fully shrunk. Candidates must be *strictly*
    /// simpler so the greedy descent terminates.
    fn shrink_candidates(&self) -> Vec<Self>;
}

macro_rules! shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink_candidates(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                if v - 1 != v / 2 {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}
shrink_unsigned!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink_candidates(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink_candidates(&self) -> Vec<Self> {
        let v = *self;
        if v == 0.0 || !v.is_finite() {
            return Vec::new();
        }
        let mut out = vec![0.0];
        let half = v / 2.0;
        if half != 0.0 {
            out.push(half);
        }
        out
    }
}

/// How many leading positions of a vector get single-element-removal
/// candidates. Bounds the candidate fanout for long vectors; chunk
/// halving still reaches the tail.
const REMOVE_POSITIONS: usize = 16;
/// How many leading positions get element-wise shrink candidates.
const ELEMENT_POSITIONS: usize = 8;
/// How many candidates each shrunk element contributes.
const ELEMENT_CANDIDATES: usize = 4;

impl<T: Shrink> Shrink for Vec<T> {
    /// Halves first (drop the back half, then the front half), then
    /// single-element removals, then element-wise shrinks — so the
    /// runner prefers structurally smaller cases before smaller values.
    fn shrink_candidates(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        for i in 0..n.min(REMOVE_POSITIONS) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        for i in 0..n.min(ELEMENT_POSITIONS) {
            let candidates = match self.get(i) {
                Some(e) => e.shrink_candidates(),
                None => Vec::new(),
            };
            for cand in candidates.into_iter().take(ELEMENT_CANDIDATES) {
                let mut v = self.clone();
                if let Some(slot) = v.get_mut(i) {
                    *slot = cand;
                }
                out.push(v);
            }
        }
        out
    }
}

impl<T: Shrink> Shrink for Option<T> {
    fn shrink_candidates(&self) -> Vec<Self> {
        match self {
            None => Vec::new(),
            Some(v) => {
                let mut out = vec![None];
                out.extend(v.shrink_candidates().into_iter().map(Some));
                out
            }
        }
    }
}

impl<A: Shrink, B: Shrink> Shrink for (A, B) {
    /// Shrinks one side at a time, left first.
    fn shrink_candidates(&self) -> Vec<Self> {
        let mut out: Vec<(A, B)> = self
            .0
            .shrink_candidates()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(
            self.1
                .shrink_candidates()
                .into_iter()
                .map(|b| (self.0.clone(), b)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_propose_zero_half_and_decrement() {
        assert_eq!(17u64.shrink_candidates(), vec![0, 8, 16]);
        assert_eq!(1u32.shrink_candidates(), vec![0]);
        assert_eq!(2usize.shrink_candidates(), vec![0, 1]);
        assert!(0u64.shrink_candidates().is_empty());
        assert_eq!(true.shrink_candidates(), vec![false]);
        assert!(false.shrink_candidates().is_empty());
        assert_eq!(0.5f64.shrink_candidates(), vec![0.0, 0.25]);
        assert!(0.0f64.shrink_candidates().is_empty());
    }

    #[test]
    fn vectors_prefer_structural_shrinks_and_stay_bounded() {
        let v: Vec<u64> = (1..=40).collect();
        let candidates = v.shrink_candidates();
        assert_eq!(candidates[0], (1..=20).collect::<Vec<u64>>());
        assert_eq!(candidates[1], (21..=40).collect::<Vec<u64>>());
        assert!(candidates[2..]
            .iter()
            .take(REMOVE_POSITIONS)
            .all(|c| c.len() == 39));
        assert!(
            candidates.len() <= 2 + REMOVE_POSITIONS + ELEMENT_POSITIONS * ELEMENT_CANDIDATES,
            "{} candidates",
            candidates.len()
        );
        assert!(Vec::<u64>::new().shrink_candidates().is_empty());
    }

    #[test]
    fn candidate_order_is_stable() {
        let v = vec![9u64, 3, 7];
        assert_eq!(v.shrink_candidates(), v.clone().shrink_candidates());
    }

    #[test]
    fn options_and_pairs_shrink_componentwise() {
        assert_eq!(Some(2u64).shrink_candidates(), vec![None, Some(0), Some(1)]);
        assert!(None::<u64>.shrink_candidates().is_empty());
        let pair = (2u64, true);
        assert_eq!(
            pair.shrink_candidates(),
            vec![(0, true), (1, true), (2, false)]
        );
    }

    #[test]
    fn greedy_descent_terminates() {
        // Follow first-candidates from a large value: must bottom out.
        let mut v: Vec<u64> = (0..64).map(|i| i * 3 + 1).collect();
        let mut steps = 0;
        while let Some(first) = v.shrink_candidates().into_iter().next() {
            v = first;
            steps += 1;
            assert!(steps < 10_000, "descent did not terminate");
        }
        assert!(v.len() <= 1);
    }
}
