//! Generator helpers — thin, total wrappers over [`Xoshiro256`].
//!
//! A generator in `ici-prop` is any `Fn(&mut Xoshiro256) -> T`; these
//! helpers cover the common shapes while staying *total*: degenerate
//! ranges clamp instead of panicking, so a shrunk configuration can
//! never crash the harness that is trying to report it.

use ici_rng::Xoshiro256;

/// A `usize` in `[lo, hi)`; returns `lo` when the range is empty.
pub fn usize_in(rng: &mut Xoshiro256, lo: usize, hi: usize) -> usize {
    if lo >= hi {
        lo
    } else {
        lo + rng.bounded_u64((hi - lo) as u64) as usize
    }
}

/// A `u64` in `[lo, hi)`; returns `lo` when the range is empty.
pub fn u64_in(rng: &mut Xoshiro256, lo: u64, hi: u64) -> u64 {
    if lo >= hi {
        lo
    } else {
        lo + rng.bounded_u64(hi - lo)
    }
}

/// An `f64` in `[lo, hi)`; returns `lo` when the range is empty.
pub fn f64_in(rng: &mut Xoshiro256, lo: f64, hi: f64) -> f64 {
    if lo >= hi {
        lo
    } else {
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// A vector of `min..=max` elements drawn from `element`.
pub fn vec_of<T>(
    rng: &mut Xoshiro256,
    min: usize,
    max: usize,
    mut element: impl FnMut(&mut Xoshiro256) -> T,
) -> Vec<T> {
    let len = usize_in(rng, min, max.max(min) + 1);
    (0..len).map(|_| element(rng)).collect()
}

/// An independent `keep_prob` coin per element; order is preserved.
pub fn subset<T: Clone>(rng: &mut Xoshiro256, xs: &[T], keep_prob: f64) -> Vec<T> {
    xs.iter()
        .filter(|_| rng.gen_bool(keep_prob))
        .cloned()
        .collect()
}

/// One element of `xs` by uniform index, or `None` when `xs` is empty.
pub fn pick<'a, T>(rng: &mut Xoshiro256, xs: &'a [T]) -> Option<&'a T> {
    rng.choose(xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_respected_and_degenerate_ranges_clamp() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..200 {
            let v = usize_in(&mut rng, 3, 9);
            assert!((3..9).contains(&v));
            let u = u64_in(&mut rng, 10, 11);
            assert_eq!(u, 10);
            let f = f64_in(&mut rng, 0.25, 0.75);
            assert!((0.25..0.75).contains(&f));
        }
        assert_eq!(usize_in(&mut rng, 5, 5), 5);
        assert_eq!(u64_in(&mut rng, 9, 3), 9);
        assert_eq!(f64_in(&mut rng, 1.0, 0.5), 1.0);
    }

    #[test]
    fn vec_of_hits_both_length_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            let v = vec_of(&mut rng, 1, 4, |r| r.next_u64());
            assert!((1..=4).contains(&v.len()));
            seen.insert(v.len());
        }
        assert_eq!(seen.len(), 4, "all lengths reachable: {seen:?}");
    }

    #[test]
    fn subset_and_pick_are_deterministic_per_seed() {
        let xs: Vec<u32> = (0..16).collect();
        let mut a = Xoshiro256::seed_from_u64(3);
        let mut b = Xoshiro256::seed_from_u64(3);
        assert_eq!(subset(&mut a, &xs, 0.5), subset(&mut b, &xs, 0.5));
        assert_eq!(pick(&mut a, &xs), pick(&mut b, &xs));
        assert_eq!(pick(&mut a, &[] as &[u32]), None);
    }
}
