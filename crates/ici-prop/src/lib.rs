//! Seeded property testing with deterministic shrinking.
//!
//! The workspace's randomized tests used to be ad-hoc seeded loops: a
//! failure printed a giant generated value and left the minimisation to
//! whoever was on call. `ici-prop` replaces those loops with a harness
//! that keeps the determinism policy (every draw comes from
//! [`ici_rng::Xoshiro256`], seeded explicitly, no ambient entropy) and
//! adds the two things a failing randomized test owes its reader:
//!
//! * **shrinking** — the failing case is greedily minimised through
//!   [`shrink::Shrink`] candidates until no smaller case still fails,
//!   recording the exact candidate path taken;
//! * **reproducers** — the minimal case is serialised as a small text
//!   file ([`repro::Reproducer`]) that replays *by seed and path alone*:
//!   CI re-runs the generator with the recorded case seed, walks the
//!   recorded shrink path, and asserts the case still fails. Committed
//!   reproducers are regression tests that cost one generator call.
//!
//! Everything is a pure function of the configured seed: same seed ⇒
//! same cases, same failure, same shrink path, byte-identical
//! reproducer text — at any thread count, because the harness never
//! leaves the calling thread.
//!
//! # Example
//!
//! ```
//! use ici_prop::{check, Config, Shrink};
//!
//! // A "bug": sums ≥ 100 are rejected somewhere downstream.
//! let result = check(
//!     "sums stay under 100",
//!     &Config { seed: 7, cases: 64, ..Config::default() },
//!     |rng| {
//!         let len = rng.gen_range(1usize..8);
//!         (0..len).map(|_| rng.gen_range(0u64..40)).collect::<Vec<u64>>()
//!     },
//!     |xs: &Vec<u64>| {
//!         let sum: u64 = xs.iter().sum();
//!         if sum < 100 { Ok(()) } else { Err(format!("sum = {sum}")) }
//!     },
//! );
//! let failure = result.expect_err("the property is falsifiable");
//! let minimal_sum: u64 = failure.minimal.iter().sum();
//! assert!(minimal_sum >= 100, "shrinking never un-fails a case");
//! assert!(failure.minimal.len() <= failure.original.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod repro;
pub mod runner;
pub mod shrink;

pub use repro::{Replay, ReproError, Reproducer};
pub use runner::{check, Config, Failure, Pass};
pub use shrink::Shrink;
