//! A tour of the deterministic fault-injection harness (`ici-faults`).
//!
//! Three stops:
//!
//! 1. A **fault plan** is a value — built from an `ici-rng` seed, it fixes
//!    every crash, restart, partition window, and per-round message-fault
//!    profile up front. Same seed ⇒ byte-identical schedule on every
//!    machine, so failures found in CI replay exactly.
//! 2. A **scheduler** walks the plan one round at a time, tracking the
//!    live set and emitting the `ici_net::FaultConfig` to install on the
//!    send path.
//! 3. The **failure-aware runner** drives a full `IciNetwork` through a
//!    plan: blocks keep committing under churn, survivors re-replicate
//!    after every crash, and each repair is certified by a shard-level
//!    Merkle audit (the collaborative-verification machinery turned on
//!    its own storage).
//!
//! Run with: `cargo run --release --example fault_tour`

use icistrategy::faults::{
    ByzantineConfig, ChurnConfig, FaultPlanConfig, MessageFaultSpec, PartitionPolicy,
};
use icistrategy::prelude::*;
use icistrategy::storage::stats::format_bytes;

fn main() {
    // ------------------------------------------------------------------
    // Stop 1 — the plan as a value.
    // ------------------------------------------------------------------
    let clusters: Vec<Vec<NodeId>> = (0..3u64)
        .map(|c| (0..8u64).map(|i| NodeId::new(c * 8 + i)).collect())
        .collect();
    let plan = FaultPlanConfig::new(7, 10, clusters)
        .churn(ChurnConfig {
            crash_prob: 0.08,
            restart_prob: 0.4,
            ..ChurnConfig::default()
        })
        .build()
        .expect("valid plan");
    println!(
        "stop 1: plan fingerprint {:016x} — {} crashes / {} restarts scheduled",
        plan.fingerprint(),
        plan.total_crashes(),
        plan.total_restarts(),
    );
    println!("{}", plan.render());

    // ------------------------------------------------------------------
    // Stop 2 — walking the schedule.
    // ------------------------------------------------------------------
    let mut scheduler = FaultScheduler::new(plan);
    while let Some(round) = scheduler.step() {
        if round.crashes.is_empty() && round.restarts.is_empty() {
            continue;
        }
        println!(
            "stop 2: round {:>2} — crash {:?}, restart {:?}, {} nodes live",
            round.round, round.crashes, round.restarts, round.live_nodes,
        );
    }

    // ------------------------------------------------------------------
    // Stop 3 — a real network under the full fault model.
    // ------------------------------------------------------------------
    let config = IciConfig::builder()
        .nodes(36)
        .cluster_size(12)
        .replication(2)
        .seed(42)
        .build()
        .expect("valid configuration");
    let profile = FaultProfile {
        seed: 42,
        rounds: 12,
        churn: ChurnConfig {
            crash_prob: 0.05,
            restart_prob: 0.5,
            min_live_per_cluster: 6,
            ..ChurnConfig::default()
        },
        partitions: PartitionPolicy {
            prob: 0.1,
            max_duration_rounds: 2,
        },
        messages: MessageFaultSpec {
            drop_prob: 0.05,
            dup_prob: 0.02,
            delay_prob: 0.05,
            max_extra_delay_ms: 20.0,
        },
        // Honest-but-crashing tour; the Byzantine roles get their own
        // walkthrough in `e_byz`, and stage-boundary churn its own
        // showcase in `e_fault`.
        byzantine: ByzantineConfig::default(),
        stage_churn: ici_sim::fault_run::StageChurn::default(),
    };
    let (network, summary) = run_ici_under_faults(
        config,
        20,
        WorkloadConfig {
            accounts: 128,
            seed: 42,
            ..WorkloadConfig::default()
        },
        profile,
    )
    .expect("plan builds over the formed clusters");

    println!(
        "stop 3: {}/{} rounds committed under churn ({} crashes, {} restarts)",
        summary.committed_blocks, summary.rounds, summary.crash_events, summary.restart_events,
    );
    println!(
        "        recovery {:.0}% over {} attempts — {} of re-replication, {} cross-cluster fetches",
        summary.recovery_success_rate() * 100.0,
        summary.recovery_attempts,
        format_bytes(summary.repair_bytes),
        summary.cross_cluster_fetches,
    );
    println!(
        "        worst round: {} nodes live, min cluster availability {:.3}; commit p50 {:.1} ms",
        summary.min_live_nodes, summary.min_availability, summary.commit_latency.p50_ms,
    );
    println!(
        "        final shard-level Merkle audit: {} ({} shards re-hashed)",
        if summary.final_audit_clean {
            "clean"
        } else {
            "FAILED"
        },
        summary.merkle_shards_verified,
    );
    assert!(network.audit_all().iter().all(|r| r.is_intact()));
    assert!(summary.final_audit_clean);
}
