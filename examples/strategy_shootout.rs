//! Strategy shootout: the same workload through ICIStrategy, full
//! replication, and RapidChain, side by side.
//!
//! Prints the three quantities the paper's evaluation revolves around:
//! per-node storage, traffic per block, and commit latency/throughput —
//! a miniature of experiments E1/E3/E7.
//!
//! Run with: `cargo run --release --example strategy_shootout`

use icistrategy::net::link::LinkModel;
use icistrategy::prelude::*;
use icistrategy::sim::table::{fmt_f64, Table};
use icistrategy::storage::stats::format_bytes;

fn main() {
    let nodes = 128;
    let blocks = 10;
    let txs = 30;
    let workload = WorkloadConfig {
        accounts: 128,
        ..WorkloadConfig::default()
    };
    let link = LinkModel {
        max_jitter_ms: 0.0,
        ..LinkModel::default()
    };

    let (_, full) = run_full(
        FullConfig {
            nodes,
            link,
            seed: 5,
            ..FullConfig::default()
        },
        blocks,
        txs,
        workload,
    );
    let (_, rapid) = run_rapidchain(
        RapidChainConfig {
            nodes,
            committee_size: 32, // 4 shards
            link,
            seed: 5,
            ..RapidChainConfig::default()
        },
        blocks / 4,
        txs,
        workload,
    );
    let (_, ici) = run_ici(
        IciConfig::builder()
            .nodes(nodes)
            .cluster_size(16)
            .replication(2)
            .link(link)
            .seed(5)
            .build()
            .expect("valid configuration"),
        blocks,
        txs,
        workload,
    );

    let mut table = Table::new(
        format!("Shootout: N={nodes}, {blocks} blocks x {txs} txs"),
        [
            "strategy",
            "storage/node (mean)",
            "% of own ledger",
            "bytes/block",
            "commit p50 (ms)",
            "tps",
        ],
    );
    for s in [&full, &rapid, &ici] {
        table.row([
            s.strategy.clone(),
            format_bytes(s.storage.mean as u64),
            format!("{:.1}%", 100.0 * s.storage_fraction()),
            format_bytes(s.mean_block_bytes as u64),
            fmt_f64(s.commit_latency.p50_ms),
            fmt_f64(s.throughput_tps),
        ]);
    }
    println!("{table}");

    println!(
        "ICI stores {:.1}x less than RapidChain per node and moves {:.1}x fewer bytes \
         per block than full replication.",
        rapid.storage.mean / ici.storage.mean,
        full.mean_block_bytes / ici.mean_block_bytes,
    );
}
