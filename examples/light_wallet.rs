//! Light wallet: submit payments through a mempool and verify receipts
//! with Merkle proofs — without ever downloading a block body.
//!
//! Every ICIStrategy node keeps the full header chain, so a wallet running
//! on any node can (a) feed signed transfers into the proposer's mempool
//! and (b) later prove inclusion of its payment with an `O(log n)` Merkle
//! proof checked against the local header — the SPV half of the query
//! protocol.
//!
//! Run with: `cargo run --example light_wallet`

use icistrategy::chain::mempool::Mempool;
use icistrategy::prelude::*;
use icistrategy::storage::stats::format_bytes;

fn main() -> Result<(), IciError> {
    let config = IciConfig::builder()
        .nodes(32)
        .cluster_size(8)
        .replication(2)
        .seed(13)
        .build()
        .map_err(IciError::Config)?;
    let mut network = IciNetwork::new(config)?;

    // The wallet: account seed 3, paying account seed 9.
    let wallet = Keypair::from_seed(3);
    let payee = Address::from_seed(500); // outside the background workload's account range
    let balance_before = network.state().balance(&payee);

    // Submit through a mempool alongside background traffic.
    let mut pool = Mempool::new(1_000);
    let payment = Transaction::signed(&wallet, payee, 250, 3, 0, b"invoice #42".to_vec());
    let payment_id = payment.id();
    pool.insert(payment).expect("wallet payment admitted");
    let mut background = WorkloadGenerator::new(WorkloadConfig {
        accounts: 32,
        seed: 77,
        ..WorkloadConfig::default()
    });
    for tx in background.batch(30) {
        // Background senders overlap the wallet's account space; skip the
        // wallet's own sender so its nonce chain stays consistent.
        if tx.sender_address() != Address::from_seed(3) {
            let _ = pool.insert(tx);
        }
    }
    println!("mempool: {} pending transactions", pool.len());

    // A proposer drains the pool (fee priority, nonce order) into blocks.
    while !pool.is_empty() {
        let batch = pool.take_for_block(12);
        let record = network.propose_block(batch)?;
        println!(
            "block {:>2}: {} txs committed in {:.1} ms",
            record.height,
            record.tx_count,
            record.commit_latency().as_millis_f64()
        );
    }

    // The payment landed; the payee's balance moved.
    let balance_after = network.state().balance(&payee);
    assert_eq!(balance_after, balance_before + 250);
    println!("payee balance: {balance_before} -> {balance_after}");

    // SPV receipt: any node proves inclusion against its own headers.
    let report = network.query_transaction(NodeId::new(17), &payment_id)?;
    let body_bytes = network
        .block(report.height)
        .expect("block exists")
        .body_len() as u64;
    println!(
        "receipt: tx {} proven at height {} index {} — {} transferred \
         (vs {} for the whole body), verified in {:.2} ms",
        &payment_id.to_hex()[..12],
        report.height,
        report.index,
        format_bytes(report.bytes),
        format_bytes(body_bytes),
        report.latency.as_millis_f64(),
    );
    assert!(report.bytes < body_bytes);
    Ok(())
}
