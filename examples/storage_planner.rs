//! Storage planner: size an ICIStrategy deployment against a per-node
//! disk budget.
//!
//! A network operator knows the ledger's growth (blocks/day × block size)
//! and each participant's disk budget; this example sweeps cluster size
//! and replication with the closed-form models from `ici-baselines` and
//! prints the configurations that fit, alongside what full replication
//! and RapidChain would require.
//!
//! Run with: `cargo run --example storage_planner`

use icistrategy::baselines::analytic::{
    full_replication_per_node, ici_per_node, rapidchain_per_node, LedgerShape,
};
use icistrategy::sim::table::Table;
use icistrategy::storage::stats::format_bytes;

fn main() {
    // A Bitcoin-2020-like ledger after three years of 1 MB blocks every
    // 10 minutes, in a 4,000-node network.
    let blocks_per_day = 144u64;
    let days = 3 * 365;
    let shape = LedgerShape {
        blocks: blocks_per_day * days,
        mean_body_bytes: 1_000_000,
    };
    let nodes = 4_000usize;
    let budget: u64 = 20 << 30; // 20 GiB per node

    println!(
        "ledger after {days} days: {} blocks, {} total",
        shape.blocks,
        format_bytes(shape.total_bytes()),
    );
    println!(
        "network: {nodes} nodes, per-node budget {}\n",
        format_bytes(budget)
    );

    let mut reference = Table::new(
        "Reference points",
        ["strategy", "per-node storage", "fits budget?"],
    );
    let full = full_replication_per_node(shape);
    let rapid = rapidchain_per_node(shape, nodes, 250);
    for (name, bytes) in [
        ("FullReplication", full),
        ("RapidChain (committees of 250)", rapid),
    ] {
        reference.row([
            name.to_string(),
            format_bytes(bytes as u64),
            if (bytes as u64) <= budget {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    println!("{reference}");

    let mut plan = Table::new(
        "ICIStrategy configurations",
        [
            "cluster size c",
            "replication r",
            "per-node storage",
            "fits budget?",
            "survives r-1 crashes/cluster",
        ],
    );
    let mut best: Option<(usize, usize, f64)> = None;
    for c in [16usize, 32, 64, 128, 256] {
        for r in [1usize, 2, 3] {
            let bytes = ici_per_node(shape, c, r);
            let fits = (bytes as u64) <= budget;
            plan.row([
                c.to_string(),
                r.to_string(),
                format_bytes(bytes as u64),
                if fits { "yes" } else { "no" }.to_string(),
                if r >= 2 { "yes" } else { "no (r=1 is fragile)" }.to_string(),
            ]);
            // Prefer the smallest cluster (lowest intra-cluster latency)
            // with r >= 2 that fits.
            if fits && r >= 2 && best.map_or(true, |(bc, _, _)| c < bc) {
                best = Some((c, r, bytes));
            }
        }
    }
    println!("{plan}");

    match best {
        Some((c, r, bytes)) => println!(
            "recommendation: clusters of {c} with r = {r} -> {} per node \
             ({:.1}% of full replication)",
            format_bytes(bytes as u64),
            100.0 * bytes / full,
        ),
        None => println!("no ICI configuration fits the budget; grow clusters or disks"),
    }
}
