//! Churn and recovery: nodes join, nodes crash, the cluster repairs
//! itself — while the chain keeps growing.
//!
//! This walks the operational story the paper's design implies: a joiner
//! bootstraps cheaply (headers + its assigned share), crashes degrade
//! replication, the repair protocol restores it (reaching across clusters
//! when a block lost every local owner), and the integrity audit verifies
//! the invariant at every step.
//!
//! Run with: `cargo run --example churn_and_recovery`

use icistrategy::prelude::*;
use icistrategy::storage::stats::format_bytes;

fn main() -> Result<(), IciError> {
    let config = IciConfig::builder()
        .nodes(48)
        .cluster_size(12)
        .replication(2)
        .seed(7)
        .build()
        .map_err(IciError::Config)?;
    let mut network = IciNetwork::new(config)?;
    let mut workload = WorkloadGenerator::new(WorkloadConfig {
        accounts: 128,
        ..WorkloadConfig::default()
    });

    // Phase 1 — grow a chain.
    for _ in 0..12 {
        network.propose_block(workload.batch(20))?;
    }
    println!("phase 1: chain at height {}", network.chain_len() - 1);

    // Phase 2 — a new node joins and bootstraps.
    let join = network.bootstrap_node(Coord::new(30.0, 30.0), JoinPolicy::NearestCentroid)?;
    println!(
        "phase 2: node {} joined cluster c{} — downloaded {} headers + {} bodies ({}) in {:.1} ms; \
         {} stale replicas pruned from ex-owners",
        join.node,
        join.cluster,
        network.chain_len(),
        join.bodies,
        format_bytes(join.total_bytes()),
        join.duration.as_millis_f64(),
        join.pruned_bodies,
    );

    // Phase 3 — failures: crash a third of one cluster.
    let victim_cluster = network.clusters()[0];
    let victims: Vec<NodeId> = network
        .membership()
        .active_members(victim_cluster)
        .into_iter()
        .take(4)
        .collect();
    for v in &victims {
        network.crash_node(*v)?;
    }
    let degraded = network.audit(victim_cluster);
    println!(
        "phase 3: crashed {:?} — cluster c{} availability {:.3}, {} heights singly held",
        victims,
        victim_cluster.get(),
        degraded.availability(),
        degraded.singly_held.len(),
    );

    // Phase 4 — repair.
    let report = network.repair_cluster(victim_cluster);
    println!(
        "phase 4: repair moved {} bodies ({}) in {:.1} ms; {} cross-cluster fetches, {} lost",
        report.transfers,
        format_bytes(report.bytes),
        report.duration.as_millis_f64(),
        report.cross_cluster_fetches.len(),
        report.unrecoverable.len(),
    );
    let repaired = network.audit(victim_cluster);
    assert!(repaired.is_intact(), "repair must restore integrity");
    println!(
        "          cluster c{} availability back to {:.3}",
        victim_cluster.get(),
        repaired.availability()
    );

    // Phase 5 — life goes on: the chain keeps committing with the crashed
    // nodes still down.
    for _ in 0..3 {
        let record = network.propose_block(workload.batch(20))?;
        println!(
            "phase 5: block {} committed by {} clusters despite failures",
            record.height,
            record.cluster_commits.len(),
        );
    }
    Ok(())
}
