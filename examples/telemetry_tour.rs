//! Telemetry tour: profile a small ICIStrategy run end to end.
//!
//! Enables workspace telemetry, drives a short simulation, then walks the
//! captured data: the span tree across subsystems, the hottest spans by
//! self time, per-phase traffic counters, and a latency histogram.
//!
//! Run with: `cargo run --example telemetry_tour`

use icistrategy::prelude::*;
use icistrategy::telemetry;

fn main() {
    // Collection is off by default (and costs one atomic load per probe
    // while off). Experiment binaries enable it via `ICI_TELEMETRY=1`;
    // here we switch it on programmatically.
    telemetry::set_enabled(true);
    telemetry::reset();

    // A small run: 64 nodes in clusters of 16, 8 blocks of 20 txs.
    let config = IciConfig::builder()
        .nodes(64)
        .cluster_size(16)
        .replication(2)
        .seed(7)
        .build()
        .expect("valid configuration");
    let (_network, summary) = run_ici(config, 8, 20, WorkloadConfig::default());
    println!(
        "run: {} blocks, {} txs, {:.1} tps (sim clock)\n",
        summary.committed_blocks, summary.total_txs, summary.throughput_tps
    );

    let snap = telemetry::snapshot();
    telemetry::set_enabled(false);

    // 1. Which subsystems did the run traverse?
    let subsystems: Vec<&str> = snap.span_subsystems().into_iter().collect();
    println!("subsystems traced: {}", subsystems.join(", "));

    // 2. The five hottest spans by self time (total minus children).
    println!("\ntop 5 spans by self time:");
    for s in snap.top_spans_by_self_time(5) {
        let label = if s.label.is_empty() {
            String::new()
        } else {
            format!(" [{}]", s.label)
        };
        println!(
            "  {:<28}{:<14} count={:<5} self={:>12} ns  total={:>12} ns",
            s.name, label, s.count, s.self_ns, s.total_ns
        );
    }

    // 3. Traffic counters, labelled by message class.
    println!("\nnet/bytes by message class:");
    for c in snap.counters.iter().filter(|c| c.name == "net/bytes") {
        println!("  {:<24} {:>12} B", c.label, c.value);
    }

    // 4. A latency histogram with percentiles.
    if let Some(h) = snap
        .histograms
        .iter()
        .find(|h| h.name == "core/commit_latency_sim_us")
    {
        println!(
            "\ncommit latency (sim µs): n={} p50={} p90={} p99={} max={}",
            h.count, h.p50, h.p90, h.p99, h.max
        );
    }

    // 5. The event ring keeps the most recent span instances as a tree.
    println!(
        "\nevent ring: {} events kept, {} dropped (capacity {})",
        snap.events.len(),
        snap.dropped_events,
        telemetry::EVENT_CAPACITY
    );
}
