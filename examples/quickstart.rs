//! Quickstart: stand up an ICIStrategy network, commit blocks, inspect
//! storage, run a query, and audit the intra-cluster integrity invariant.
//!
//! Run with: `cargo run --example quickstart`

use icistrategy::prelude::*;
use icistrategy::storage::stats::format_bytes;

fn main() -> Result<(), IciError> {
    // 64 nodes, clusters of 16, each block body on 2 nodes per cluster.
    let config = IciConfig::builder()
        .nodes(64)
        .cluster_size(16)
        .replication(2)
        .seed(42)
        .build()
        .map_err(IciError::Config)?;
    let mut network = IciNetwork::new(config)?;
    println!(
        "network: {} nodes in {} clusters",
        network.config().nodes,
        network.clusters().len()
    );

    // Drive ten blocks of workload through the full lifecycle:
    // propose → distribute → collaboratively verify → commit → store.
    let mut workload = WorkloadGenerator::new(WorkloadConfig::default());
    for _ in 0..10 {
        let record = network.propose_block(workload.batch(25))?;
        println!(
            "block {:>2}: proposer {} (cluster {}), {} txs, committed network-wide in {:.1} ms",
            record.height,
            record.proposer,
            record.proposer_cluster,
            record.tx_count,
            record.commit_latency().as_millis_f64(),
        );
    }

    // Per-node storage vs a full replica.
    let stats = network.storage_stats();
    let full = network.full_replica_bytes();
    println!(
        "\nstorage: mean {}/node vs {} for a full replica ({:.1}% of the ledger)",
        format_bytes(stats.mean as u64),
        format_bytes(full),
        100.0 * stats.mean / full as f64,
    );

    // A node that only has headers can still fetch any body: the query
    // escalates local → intra-cluster → cross-cluster.
    let requester = NodeId::new(0);
    let height = 5;
    let report = network.query_body(requester, height)?;
    println!(
        "query: node {requester} fetched body {height} via {:?} from {} in {:.2} ms",
        report.tier,
        report.server,
        report.latency.as_millis_f64(),
    );

    // The invariant the strategy is named for: every cluster collectively
    // holds every block.
    let intact = network.audit_all().iter().all(|r| r.is_intact());
    println!(
        "intra-cluster integrity: {}",
        if intact { "intact" } else { "VIOLATED" }
    );
    assert!(intact);
    Ok(())
}
