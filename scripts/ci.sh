#!/usr/bin/env bash
# The full gate, exactly as CI runs it. Fail fast: the first failing
# step aborts the run. Everything here is offline — the workspace has
# no registry dependencies (enforced by ici-lint's `deps` rule).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> ici-lint"
cargo run -q -p ici-lint

echo "==> telemetry smoke (E1 with ICI_TELEMETRY=1)"
ICI_TELEMETRY=1 cargo run -q --release -p ici-bench --bin e1_storage >/dev/null
python3 - <<'EOF'
import json
with open("results/e1.json") as f:
    record = json.load(f)
t = record.get("telemetry")
assert t is not None, "results/e1.json has no telemetry section"
assert t["spans"], "telemetry.spans is empty"
assert t["counters"], "telemetry.counters is empty"
subsystems = {s["name"].split("/", 1)[0] for s in t["spans"]}
print(f"    telemetry OK: {len(t['spans'])} span rows, "
      f"{len(t['counters'])} counters, subsystems: {', '.join(sorted(subsystems))}")
EOF

echo "==> all green"
