#!/usr/bin/env bash
# The full gate, exactly as CI runs it. Fail fast: the first failing
# step aborts the run. Everything here is offline — the workspace has
# no registry dependencies (enforced by ici-lint's `deps` rule).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> ici-lint"
cargo run -q -p ici-lint

echo "==> all green"
