#!/usr/bin/env bash
# The full gate, exactly as CI runs it. Fail fast: the first failing
# step aborts the run. Everything here is offline — the workspace has
# no registry dependencies (enforced by ici-lint's `deps` rule).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (serial pool, ICI_PAR_THREADS=1)"
ICI_PAR_THREADS=1 cargo test -q --workspace

echo "==> cargo test (4-wide pool, ICI_PAR_THREADS=4)"
ICI_PAR_THREADS=4 cargo test -q --workspace

echo "==> ici-lint"
cargo run -q -p ici-lint

echo "==> telemetry smoke (E1 with ICI_TELEMETRY=1)"
ICI_TELEMETRY=1 cargo run -q --release -p ici-bench --bin e1_storage >/dev/null
python3 - <<'EOF'
import json
with open("results/e1.json") as f:
    record = json.load(f)
t = record.get("telemetry")
assert t is not None, "results/e1.json has no telemetry section"
assert t["spans"], "telemetry.spans is empty"
assert t["counters"], "telemetry.counters is empty"
subsystems = {s["name"].split("/", 1)[0] for s in t["spans"]}
print(f"    telemetry OK: {len(t['spans'])} span rows, "
      f"{len(t['counters'])} counters, subsystems: {', '.join(sorted(subsystems))}")
EOF

echo "==> fault-injection smoke (E-fault, pinned seed, replayed twice)"
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cp results/e_fault.json results/e_fault.replay.json
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cmp results/e_fault.replay.json results/e_fault.json
rm results/e_fault.replay.json
python3 - <<'EOF'
import json
with open("results/e_fault.json") as f:
    record = json.load(f)
rows = {r[0]: r[1] for r in record["tables"][0]["rows"]}
assert rows["recovery success rate"] == "100.0%", rows
assert rows["unrecoverable heights"] == "0", rows
cycles = record["tables"][1]["rows"]
assert all(int(r[1]) >= 1 for r in cycles), cycles
assert all(r[3] == "clean" for r in cycles), cycles
print(f"    fault smoke OK: byte-identical replay, "
      f"{rows['crash events']} crashes / {rows['restart events']} restarts, "
      f"recovery {rows['recovery success rate']}, "
      f"{len(cycles)} clusters all cycled and audited clean")
EOF

echo "==> fault telemetry smoke (E-fault with ICI_TELEMETRY=1)"
ICI_TELEMETRY=1 cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
python3 - <<'EOF'
import json
with open("results/e_fault.json") as f:
    record = json.load(f)
t = record.get("telemetry")
assert t is not None, "results/e_fault.json has no telemetry section"
gauges = [g for g in t["gauges"] if g["name"] == "faults/live_nodes"]
assert gauges, "faults/live_nodes gauge missing"
assert any(s["name"].startswith("cluster/kmeans") for s in t["spans"]), \
    "cluster/kmeans spans missing"
print(f"    fault telemetry OK: {len(gauges)} live-node gauge rows")
EOF
# Restore the deterministic (telemetry-free) record the repo commits.
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null

echo "==> thread-count determinism (E-fault, pinned seed, 1 vs 4 threads)"
ICI_PAR_THREADS=1 cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cp results/e_fault.json results/e_fault.serial.json
ICI_PAR_THREADS=4 cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cmp results/e_fault.serial.json results/e_fault.json
rm results/e_fault.serial.json
echo "    determinism OK: e_fault.json byte-identical at 1 and 4 threads"

echo "==> parallel speedup bench (E1 + E7, 1 vs 4 threads)"
bench_wall() { # bench_wall <bin> <threads> -> seconds (wall clock)
    local start end
    start=$(python3 -c 'import time; print(time.monotonic())')
    ICI_PAR_THREADS="$2" cargo run -q --release -p ici-bench --bin "$1" >/dev/null
    end=$(python3 -c 'import time; print(time.monotonic())')
    python3 -c "print(f'{$end - $start:.3f}')"
}
E1_SERIAL=$(bench_wall e1_storage 1)
E1_PAR=$(bench_wall e1_storage 4)
E7_SERIAL=$(bench_wall e7_throughput 1)
E7_PAR=$(bench_wall e7_throughput 4)
python3 - "$E1_SERIAL" "$E1_PAR" "$E7_SERIAL" "$E7_PAR" <<'EOF'
import json, os, sys
e1s, e1p, e7s, e7p = map(float, sys.argv[1:5])
record = {
    "id": "BENCH_par",
    "title": "ici-par wall-clock: serial vs 4-wide pool",
    "host_cpus": os.cpu_count(),
    "runs": [
        {"bin": "e1_storage", "serial_s": e1s, "parallel_s": e1p,
         "speedup": round(e1s / e1p, 3) if e1p > 0 else None},
        {"bin": "e7_throughput", "serial_s": e7s, "parallel_s": e7p,
         "speedup": round(e7s / e7p, 3) if e7p > 0 else None},
    ],
}
with open("results/BENCH_par.json", "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
for run in record["runs"]:
    print(f"    {run['bin']}: {run['serial_s']:.2f}s serial, "
          f"{run['parallel_s']:.2f}s at 4 threads ({run['speedup']}x)")
EOF

echo "==> all green"
