#!/usr/bin/env bash
# The full gate, exactly as CI runs it. Fail fast: the first failing
# step aborts the run. Everything here is offline — the workspace has
# no registry dependencies (enforced by ici-lint's `deps` rule).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (serial pool, ICI_PAR_THREADS=1)"
ICI_PAR_THREADS=1 cargo test -q --workspace

echo "==> cargo test (4-wide pool, ICI_PAR_THREADS=4)"
ICI_PAR_THREADS=4 cargo test -q --workspace

echo "==> ici-lint"
cargo run -q -p ici-lint

echo "==> ici-lint JSON report matches committed results/LINT.json"
cargo run -q -p ici-lint -- --format json > results/LINT.check.json
cmp results/LINT.check.json results/LINT.json || {
    echo "lint JSON drifted from results/LINT.json; regenerate it with"
    echo "  cargo run -q -p ici-lint -- --format json > results/LINT.json"
    rm results/LINT.check.json
    exit 1
}
rm results/LINT.check.json

echo "==> telemetry smoke (E1 with ICI_TELEMETRY=1, pipeline depth 2)"
# Depth 2 overlaps heights, so the stage machine's occupancy gauges and
# stage spans must show up in the telemetry section.
ICI_TELEMETRY=1 ICI_PIPELINE_DEPTH=2 cargo run -q --release -p ici-bench --bin e1_storage >/dev/null
python3 - <<'EOF'
import json
with open("results/e1.json") as f:
    record = json.load(f)
t = record.get("telemetry")
assert t is not None, "results/e1.json has no telemetry section"
assert t["spans"], "telemetry.spans is empty"
assert t["counters"], "telemetry.counters is empty"
subsystems = {s["name"].split("/", 1)[0] for s in t["spans"]}
gauges = {g["name"] for g in t["gauges"]}
assert "pipeline/in_flight" in gauges, f"pipeline occupancy gauge missing: {sorted(gauges)}"
assert any(g.startswith("pipeline/queue_") for g in gauges), \
    f"pipeline queue-depth gauges missing: {sorted(gauges)}"
stage_spans = {s["name"] for s in t["spans"] if s["name"].startswith("core/stage_")}
assert {"core/stage_build", "core/stage_distribute", "core/stage_verify",
        "core/stage_commit"} <= stage_spans, f"lifecycle stage spans missing: {stage_spans}"
series = record.get("series")
assert series, "results/e1.json has no per-round series under ICI_TELEMETRY=1"
sample = series[0]["samples"][0]
for key in ("committed_txs", "mempool_depth", "live_nodes", "stored_bytes", "traffic"):
    assert key in sample, f"series sample missing {key}"
print(f"    telemetry OK: {len(t['spans'])} span rows, "
      f"{len(t['counters'])} counters, subsystems: {', '.join(sorted(subsystems))}")
print(f"    pipeline OK: occupancy + queue gauges and all four stage spans present")
print(f"    series OK: {len(series)} runs, "
      f"{sum(len(s['samples']) for s in series)} round samples")
EOF

echo "==> causal trace smoke (E1 with ICI_TRACE=1, depth {1,4} x threads {1,4})"
# Depth- and thread-count determinism: the canonical event log and the
# Chrome export must come out byte-identical whether the lifecycle runs
# sequentially (depth 1, the reference path) or overlapped (depth 4),
# on a serial or a 4-wide pool — and the canonical log must match the
# committed baseline at every matrix point.
first=1
for depth in 1 4; do
    for t in 1 4; do
        ICI_TRACE=1 ICI_PIPELINE_DEPTH=$depth ICI_PAR_THREADS=$t \
            cargo run -q --release -p ici-bench --bin e1_storage >/dev/null
        if [ "$first" = 1 ]; then
            cp results/TRACE_e1.chrome.json results/TRACE_e1.chrome.ref.json
            first=0
        else
            cmp results/TRACE_e1.chrome.ref.json results/TRACE_e1.chrome.json || {
                echo "chrome trace diverged at depth=$depth threads=$t"; exit 1;
            }
        fi
        git diff --quiet -- results/TRACE_e1.json || {
            echo "trace drifted from committed results/TRACE_e1.json at depth=$depth threads=$t;"
            echo "regenerate with  ICI_TRACE=1 cargo run -q --release -p ici-bench --bin e1_storage"
            exit 1
        }
    done
done
rm results/TRACE_e1.chrome.ref.json
# Tracing must never leak into the result record itself.
git diff --quiet -- results/e1.json || {
    echo "traced run changed committed results/e1.json"; exit 1;
}
python3 - <<'EOF'
import json
from collections import defaultdict
with open("results/TRACE_e1.chrome.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert events, "chrome trace has no events"
slices = [e for e in events if e["ph"] in ("X", "i")]
assert slices, "chrome trace has no slices or instants"
last = defaultdict(lambda: -1)
for e in slices:
    track = (e["pid"], e["tid"])
    assert e["ts"] >= last[track], f"ts not monotone on track {track}: {e}"
    last[track] = e["ts"]
with open("results/TRACE_e1.json") as f:
    canonical = json.load(f)
assert canonical["dropped"] == 0, "e1 trace overflowed the event ring"
assert len(canonical["events"]) == len(slices), "canonical/chrome event counts differ"
print(f"    trace OK: {len(slices)} events on {len(last)} tracks, "
      f"byte-identical across depth {{1,4}} x threads {{1,4}}")
EOF
rm results/TRACE_e1.chrome.json

echo "==> fault-injection smoke (E-fault, pinned seed, replayed twice)"
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cp results/e_fault.json results/e_fault.replay.json
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cmp results/e_fault.replay.json results/e_fault.json
rm results/e_fault.replay.json
python3 - <<'EOF'
import json
with open("results/e_fault.json") as f:
    record = json.load(f)
rows = {r[0]: r[1] for r in record["tables"][0]["rows"]}
assert rows["recovery success rate"] == "100.0%", rows
assert rows["unrecoverable heights"] == "0", rows
assert int(rows["stage-boundary crashes"]) > 0, rows
cycles = record["tables"][1]["rows"]
assert all(int(r[1]) >= 1 for r in cycles), cycles
assert all(r[3] == "clean" for r in cycles), cycles
print(f"    fault smoke OK: byte-identical replay, "
      f"{rows['crash events']} crashes / {rows['restart events']} restarts "
      f"(+{rows['stage-boundary crashes']} at stage boundaries), "
      f"recovery {rows['recovery success rate']}, "
      f"{len(cycles)} clusters all cycled and audited clean")
EOF

echo "==> fault telemetry smoke (E-fault with ICI_TELEMETRY=1)"
ICI_TELEMETRY=1 cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
python3 - <<'EOF'
import json
with open("results/e_fault.json") as f:
    record = json.load(f)
t = record.get("telemetry")
assert t is not None, "results/e_fault.json has no telemetry section"
gauges = [g for g in t["gauges"] if g["name"] == "faults/live_nodes"]
assert gauges, "faults/live_nodes gauge missing"
assert any(s["name"].startswith("cluster/kmeans") for s in t["spans"]), \
    "cluster/kmeans spans missing"
print(f"    fault telemetry OK: {len(gauges)} live-node gauge rows")
EOF
# Restore the deterministic (telemetry-free) record the repo commits.
cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null

echo "==> depth x threads determinism (E-fault, pinned seed)"
ICI_PIPELINE_DEPTH=1 ICI_PAR_THREADS=1 \
    cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
cp results/e_fault.json results/e_fault.ref.json
for depth in 1 4; do
    for t in 1 4; do
        [ "$depth" = 1 ] && [ "$t" = 1 ] && continue
        ICI_PIPELINE_DEPTH=$depth ICI_PAR_THREADS=$t \
            cargo run -q --release -p ici-bench --bin e_fault -- --seed 42 >/dev/null
        cmp results/e_fault.ref.json results/e_fault.json || {
            echo "e_fault.json diverged at depth=$depth threads=$t"; exit 1;
        }
    done
done
rm results/e_fault.ref.json
echo "    determinism OK: e_fault.json byte-identical across depth {1,4} x threads {1,4}"

echo "==> Byzantine smoke (E-byz, pinned seed, replayed twice)"
cargo run -q --release -p ici-bench --bin e_byz -- --seed 42 >/dev/null
cp results/e_byz.json results/e_byz.replay.json
cargo run -q --release -p ici-bench --bin e_byz -- --seed 42 >/dev/null
cmp results/e_byz.replay.json results/e_byz.json
rm results/e_byz.replay.json
git diff --quiet -- results/e_byz.json || {
    echo "E-byz drifted from committed results/e_byz.json; regenerate with"
    echo "  cargo run -q --release -p ici-bench --bin e_byz -- --seed 42"
    exit 1
}
python3 - <<'EOF'
import json
with open("results/e_byz.json") as f:
    record = json.load(f)
rows = {r[0]: r[1:] for r in record["tables"][0]["rows"]}
ici, full, rapidchain = range(3)
assert rows["equivocation detection rate"][ici] == "100.0%", rows
assert rows["undetected equivocations (hazard)"][ici] == "0", rows
assert rows["liar detection rate"][ici] == "100.0%", rows
assert int(rows["committed blocks"][ici]) > 0, rows
assert all(int(v) > 0 for v in rows["equivocation attempts"]), rows
print(f"    byz smoke OK: byte-identical replay, "
      f"{rows['equivocation attempts'][ici]} equivocations all detected, "
      f"{rows['lying verifiers named'][ici]} liars named, "
      f"wasted {rows['wasted fraction'][ici]} (ici) vs "
      f"{rows['wasted fraction'][full]} (full) / "
      f"{rows['wasted fraction'][rapidchain]} (rapidchain)")
EOF

echo "==> depth x threads determinism (E-byz, pinned seed)"
ICI_PIPELINE_DEPTH=1 ICI_PAR_THREADS=1 \
    cargo run -q --release -p ici-bench --bin e_byz -- --seed 42 >/dev/null
cp results/e_byz.json results/e_byz.ref.json
for depth in 1 4; do
    for t in 1 4; do
        [ "$depth" = 1 ] && [ "$t" = 1 ] && continue
        ICI_PIPELINE_DEPTH=$depth ICI_PAR_THREADS=$t \
            cargo run -q --release -p ici-bench --bin e_byz -- --seed 42 >/dev/null
        cmp results/e_byz.ref.json results/e_byz.json || {
            echo "e_byz.json diverged at depth=$depth threads=$t"; exit 1;
        }
    done
done
rm results/e_byz.ref.json
echo "    determinism OK: e_byz.json byte-identical across depth {1,4} x threads {1,4}"

echo "==> scale smoke (E-scale, pinned seed, shards {1,4} x threads {1,4})"
# The committed record holds only deterministic tables (counts, roots,
# ratios); every shard x thread matrix point must reproduce it byte for
# byte. Host-dependent numbers ride the SCALE_STATS stdout line instead.
ICI_STATE_SHARDS=1 ICI_PAR_THREADS=1 \
    cargo run -q --release -p ici-bench --bin e_scale -- --seed 42 >/dev/null
git diff --quiet -- results/e_scale.json || {
    echo "E-scale drifted from committed results/e_scale.json; regenerate with"
    echo "  cargo run -q --release -p ici-bench --bin e_scale -- --seed 42"
    exit 1
}
for s in 1 4; do
    for t in 1 4; do
        [ "$s" = 1 ] && [ "$t" = 1 ] && continue
        ICI_STATE_SHARDS=$s ICI_PAR_THREADS=$t \
            cargo run -q --release -p ici-bench --bin e_scale -- --seed 42 >/dev/null
        git diff --quiet -- results/e_scale.json || {
            echo "e_scale.json diverged at shards=$s threads=$t"; exit 1;
        }
    done
done
echo "    determinism OK: e_scale.json byte-identical across shards {1,4} x threads {1,4}"

echo "==> scale bench (E-scale, 4 shards x 4 threads, peak-live ceiling)"
SCALE_OUT=$(ICI_STATE_SHARDS=4 ICI_PAR_THREADS=4 ICI_ALLOC_STATS=1 \
    ./target/release/e_scale --seed 42)
git diff --quiet -- results/e_scale.json || {
    echo "instrumented scale run changed committed results/e_scale.json"; exit 1;
}
SCALE_LINE=$(printf '%s\n' "$SCALE_OUT" | grep '^SCALE_STATS ')
python3 - "$SCALE_LINE" <<'EOF'
import json, os, sys
line = sys.argv[1]
fields = dict(kv.split("=", 1) for kv in line.split()[1:])
peak = int(fields["peak_live_bytes"])
# Ceiling: 64 MiB for the small tier (50k accounts). The healthy run
# peaks around 12 MiB; an O(accounts)-per-block regression (full-state
# clone, flat-root recompute in the hot loop) blows straight through it.
CEILING = 64 << 20
assert peak <= CEILING, f"peak live {peak} bytes exceeds ceiling {CEILING}"
host_cpus = os.cpu_count() or 1
record = {
    "id": "BENCH_scale",
    "title": "E-scale: throughput, commit latency, and peak live heap",
    "host_cpus": host_cpus,
    "effective_threads": int(fields["threads"]),
    "shards": int(fields["shards"]),
    "peak_live_ceiling_bytes": CEILING,
    "runs": [{
        "bin": "e_scale",
        "accounts": int(fields["accounts"]),
        "committed_txs": int(fields["committed"]),
        "wall_s": float(fields["wall_s"]),
        "tps": float(fields["tps"]),
        "commit_p50_ns": int(fields["commit_p50_ns"]),
        "commit_p90_ns": int(fields["commit_p90_ns"]),
        "commit_p99_ns": int(fields["commit_p99_ns"]),
        "peak_live_bytes": peak,
    }],
}
with open("results/BENCH_scale.json", "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
r = record["runs"][0]
print(f"    e_scale: {r['committed_txs']} txs in {r['wall_s']:.2f}s "
      f"({r['tps']:.0f} tx/s), commit p99 {r['commit_p99_ns']/1e6:.2f} ms, "
      f"peak live {peak/2**20:.1f} MiB (ceiling {CEILING>>20} MiB)")
EOF

echo "==> shrinker determinism + reproducer replay (1 vs 4 threads)"
# The ici-prop shrinker is part of the deterministic surface: the same
# seed must descend to the same minimal counterexample byte for byte at
# both pool widths, and every committed tests/reproducers/*.repro file
# must still fail its property when replayed from seed and shrink path.
ICI_PAR_THREADS=1 cargo test -q --release --test shrink_determinism --test reproducers
ICI_PAR_THREADS=4 cargo test -q --release --test shrink_determinism --test reproducers
echo "    shrinker OK: minimal reproducer pinned at 1 and 4 threads"

echo "==> parallel speedup bench (E1 + E7, 1 vs 4 threads, pipelined lifecycle)"
# The pipeline depth follows the thread count, so the serial leg runs
# the sequential reference lifecycle and the parallel leg overlaps
# heights across the stage machine. Best-of-3 keeps scheduler noise out
# of the committed trajectory.
bench_wall() { # bench_wall <bin> <threads> -> best-of-3 wall seconds
    local best="inf" start end
    for _ in 1 2 3; do
        start=$(python3 -c 'import time; print(time.monotonic())')
        ICI_PAR_THREADS="$2" cargo run -q --release -p ici-bench --bin "$1" >/dev/null
        end=$(python3 -c 'import time; print(time.monotonic())')
        best=$(python3 -c "print(min(float('$best'), $end - $start))")
    done
    python3 -c "print('%.3f' % float('$best'))"
}
E1_SERIAL=$(bench_wall e1_storage 1)
E1_PAR=$(bench_wall e1_storage 4)
E7_SERIAL=$(bench_wall e7_throughput 1)
E7_PAR=$(bench_wall e7_throughput 4)
python3 - "$E1_SERIAL" "$E1_PAR" "$E7_SERIAL" "$E7_PAR" <<'EOF'
import json, os, sys
e1s, e1p, e7s, e7p = map(float, sys.argv[1:5])
REQUESTED = 4
MAX_THREADS = 256  # ici_par::MAX_THREADS
host_cpus = os.cpu_count() or 1
# What ici-par actually resolves for ICI_PAR_THREADS=4: the env value
# clamped to MAX_THREADS (the pool oversubscribes a narrower host).
# Recorded per run so scripts/bench_compare can judge each speedup gate
# against the hardware that produced it (advisory when host_cpus <
# effective_threads).
effective = min(REQUESTED, MAX_THREADS)
def run(bin_name, serial, parallel):
    return {"bin": bin_name, "host_cpus": host_cpus,
            "effective_threads": effective, "timing": "best_of_3",
            "serial_s": serial, "parallel_s": parallel,
            "speedup": round(serial / parallel, 3) if parallel > 0 else None}
record = {
    "id": "BENCH_par",
    "title": "ici-par wall-clock: serial vs 4-wide pool, pipelined lifecycle",
    "host_cpus": host_cpus,
    "effective_threads": effective,
    "runs": [
        run("e1_storage", e1s, e1p),
        run("e7_throughput", e7s, e7p),
    ],
}
with open("results/BENCH_par.json", "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
for r in record["runs"]:
    print(f"    {r['bin']}: {r['serial_s']:.2f}s serial, "
          f"{r['parallel_s']:.2f}s at 4 threads ({r['speedup']}x, best of 3)")
if host_cpus < effective:
    # Annotate, don't fail: speedup on a width-clamped host is bounded by
    # the hardware, not by the decomposition (bench_compare turns the
    # speedup floors advisory from the per-run fields).
    print(f"    note: host has {host_cpus} CPU(s) < {effective} "
          f"pool threads - width-clamped, speedup gates advisory")
EOF

echo "==> allocation bench (ICI_ALLOC_STATS=1, e1/e7/e_fault at 4 threads)"
alloc_bench() { # alloc_bench <bin> [args...] -> "wall_s count bytes"
    python3 - "$@" <<'EOF'
import os, re, subprocess, sys, time
env = dict(os.environ, ICI_ALLOC_STATS="1", ICI_PAR_THREADS="4")
start = time.monotonic()
out = subprocess.run(["./target/release/" + sys.argv[1], *sys.argv[2:]],
                     env=env, capture_output=True, text=True, check=True)
wall = time.monotonic() - start
m = re.search(r"ALLOC_STATS id=\S+ count=(\d+) bytes=(\d+)", out.stdout)
assert m, "no ALLOC_STATS line; is the counting allocator wired?"
print(f"{wall:.3f} {m.group(1)} {m.group(2)}")
EOF
}
E1_ALLOC=$(alloc_bench e1_storage)
E7_ALLOC=$(alloc_bench e7_throughput)
EF_ALLOC=$(alloc_bench e_fault --seed 42)
# The counting allocator must never leak into the result records: the
# instrumented runs have to reproduce the committed JSON byte for byte
# (digest caching, shared bodies, and chunked vote forks included).
git diff --quiet -- results/e1.json results/e7.json results/e_fault.json || {
    echo "allocation-bench runs changed committed results/e*.json"; exit 1;
}
# shellcheck disable=SC2086
python3 - $E1_ALLOC $E7_ALLOC $EF_ALLOC <<'EOF'
import json, sys
vals = sys.argv[1:10]
# Pre-optimization reference: the zero-copy-pipeline PR's parent commit
# with the same counting allocator patched in, ICI_PAR_THREADS=4.
BEFORE = {
    "e1_storage":    {"wall_s": 0.780, "allocs": 1_081_488, "alloc_bytes": 457_007_918},
    "e7_throughput": {"wall_s": 0.728, "allocs": 1_081_745, "alloc_bytes": 457_118_573},
    "e_fault":       {"wall_s": 0.093, "allocs": 57_794,    "alloc_bytes": 18_937_627},
}
GATED = {"e1_storage", "e7_throughput"}  # acceptance: >=30% fewer, count AND bytes
runs = []
for i, bin_name in enumerate(["e1_storage", "e7_throughput", "e_fault"]):
    wall, count, nbytes = float(vals[3*i]), int(vals[3*i+1]), int(vals[3*i+2])
    before = BEFORE[bin_name]
    run = {
        "bin": bin_name,
        "before": before,
        "after": {"wall_s": wall, "allocs": count, "alloc_bytes": nbytes},
        "alloc_reduction": round(1 - count / before["allocs"], 4),
        "bytes_reduction": round(1 - nbytes / before["alloc_bytes"], 4),
    }
    runs.append(run)
    print(f"    {bin_name}: {before['allocs']} -> {count} allocs "
          f"(-{run['alloc_reduction']:.1%}), "
          f"{before['alloc_bytes']} -> {nbytes} bytes (-{run['bytes_reduction']:.1%}), "
          f"{wall:.2f}s wall")
    if bin_name in GATED:
        assert run["alloc_reduction"] >= 0.30, f"{bin_name}: allocation-count gate (<30%)"
        assert run["bytes_reduction"] >= 0.30, f"{bin_name}: allocation-bytes gate (<30%)"
record = {
    "id": "BENCH_alloc",
    "title": "Zero-copy block pipeline: allocations and wall-clock, before vs after",
    "threads": 4,
    "runs": runs,
}
with open("results/BENCH_alloc.json", "w") as f:
    json.dump(record, f, indent=2)
    f.write("\n")
print("    allocation gate OK: e1/e7 cleared 30% on count and bytes")
EOF

echo "==> perf trajectory vs HEAD (scripts/bench_compare)"
./scripts/bench_compare --threshold 10

echo "==> all green"
