//! `ici` — command-line front end for the ICIStrategy reproduction.
//!
//! ```text
//! ici simulate [--strategy ici|full|rapidchain] [--nodes N]
//!              [--cluster-size C] [--replication R]
//!              [--blocks B] [--txs T] [--seed S]
//! ici compare  [--nodes N] [--blocks B] [--txs T] [--seed S]
//! ici plan     [--ledger-gb G] [--nodes N] [--budget-gb B]
//! ici help
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use icistrategy::baselines::analytic::{
    full_replication_per_node, ici_per_node, rapidchain_per_node, LedgerShape,
};
use icistrategy::net::link::LinkModel;
use icistrategy::prelude::*;
use icistrategy::sim::runner::RunSummary;
use icistrategy::sim::table::{fmt_f64, Table};
use icistrategy::storage::stats::format_bytes;

const HELP: &str = "\
ici — multi-node collaborative storage via clustering (ICDCS 2020 reproduction)

USAGE:
    ici simulate [OPTIONS]     run one strategy and print its summary
    ici compare  [OPTIONS]     run all three strategies on the same workload
    ici plan     [OPTIONS]     size a deployment with the analytic models
    ici help                   show this message

SIMULATE / COMPARE OPTIONS:
    --strategy <ici|full|rapidchain>   (simulate only; default ici)
    --nodes <N>          network size                [default 128]
    --cluster-size <C>   ICI cluster / committee     [default 16]
    --replication <R>    bodies per block per cluster [default 2]
    --blocks <B>         blocks to commit            [default 10]
    --txs <T>            transactions per block      [default 30]
    --seed <S>           master seed                 [default 42]

PLAN OPTIONS:
    --ledger-gb <G>      total ledger size in GiB    [default 100]
    --nodes <N>          network size                [default 4000]
    --budget-gb <B>      per-node disk budget in GiB [default 20]
";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument '{}'", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("invalid value '{raw}' for --{key}")),
    }
}

struct CommonOpts {
    nodes: usize,
    cluster_size: usize,
    replication: usize,
    blocks: usize,
    txs: usize,
    seed: u64,
}

fn common(flags: &HashMap<String, String>) -> Result<CommonOpts, String> {
    Ok(CommonOpts {
        nodes: get(flags, "nodes", 128)?,
        cluster_size: get(flags, "cluster-size", 16)?,
        replication: get(flags, "replication", 2)?,
        blocks: get(flags, "blocks", 10)?,
        txs: get(flags, "txs", 30)?,
        seed: get(flags, "seed", 42)?,
    })
}

fn workload(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        accounts: 256,
        seed,
        ..WorkloadConfig::default()
    }
}

fn quiet_link() -> LinkModel {
    LinkModel {
        max_jitter_ms: 0.0,
        ..LinkModel::default()
    }
}

fn run_strategy(name: &str, opts: &CommonOpts) -> Result<RunSummary, String> {
    match name {
        "ici" => {
            let config = IciConfig::builder()
                .nodes(opts.nodes)
                .cluster_size(opts.cluster_size)
                .replication(opts.replication)
                .link(quiet_link())
                .seed(opts.seed)
                .build()
                .map_err(|e| e.to_string())?;
            Ok(run_ici(config, opts.blocks, opts.txs, workload(opts.seed)).1)
        }
        "full" => Ok(run_full(
            FullConfig {
                nodes: opts.nodes,
                link: quiet_link(),
                seed: opts.seed,
                ..FullConfig::default()
            },
            opts.blocks,
            opts.txs,
            workload(opts.seed),
        )
        .1),
        "rapidchain" => {
            let shards = opts.nodes.div_ceil(opts.cluster_size * 2).max(1);
            Ok(run_rapidchain(
                RapidChainConfig {
                    nodes: opts.nodes,
                    committee_size: opts.nodes.div_ceil(shards),
                    link: quiet_link(),
                    seed: opts.seed,
                    ..RapidChainConfig::default()
                },
                (opts.blocks / shards).max(1),
                opts.txs,
                workload(opts.seed),
            )
            .1)
        }
        other => Err(format!("unknown strategy '{other}' (ici|full|rapidchain)")),
    }
}

fn summary_table(title: &str, summaries: &[&RunSummary]) -> Table {
    let mut table = Table::new(
        title,
        [
            "strategy",
            "storage/node",
            "% of ledger",
            "bytes/block",
            "commit p50 (ms)",
            "tps",
        ],
    );
    for s in summaries {
        table.row([
            s.strategy.clone(),
            format_bytes(s.storage.mean as u64),
            format!("{:.1}%", 100.0 * s.storage_fraction()),
            format_bytes(s.mean_block_bytes as u64),
            fmt_f64(s.commit_latency.p50_ms),
            fmt_f64(s.throughput_tps),
        ]);
    }
    table
}

fn cmd_simulate(flags: HashMap<String, String>) -> Result<(), String> {
    let strategy = flags
        .get("strategy")
        .cloned()
        .unwrap_or_else(|| "ici".to_string());
    let opts = common(&flags)?;
    let summary = run_strategy(&strategy, &opts)?;
    println!(
        "{}",
        summary_table(
            &format!(
                "simulate: {} — N={}, c={}, r={}, {} blocks x {} txs",
                strategy, opts.nodes, opts.cluster_size, opts.replication, opts.blocks, opts.txs
            ),
            &[&summary],
        )
    );
    Ok(())
}

fn cmd_compare(flags: HashMap<String, String>) -> Result<(), String> {
    let opts = common(&flags)?;
    let ici = run_strategy("ici", &opts)?;
    let full = run_strategy("full", &opts)?;
    let rapid = run_strategy("rapidchain", &opts)?;
    println!(
        "{}",
        summary_table(
            &format!(
                "compare: N={}, c={}, r={}, {} blocks x {} txs",
                opts.nodes, opts.cluster_size, opts.replication, opts.blocks, opts.txs
            ),
            &[&full, &rapid, &ici],
        )
    );
    println!(
        "ICI/RapidChain storage ratio: {:.3}",
        ici.storage_fraction() / rapid.storage_fraction().max(1e-12)
    );
    Ok(())
}

fn cmd_plan(flags: HashMap<String, String>) -> Result<(), String> {
    let ledger_gb: u64 = get(&flags, "ledger-gb", 100)?;
    let nodes: usize = get(&flags, "nodes", 4_000)?;
    let budget_gb: u64 = get(&flags, "budget-gb", 20)?;
    let budget = budget_gb << 30;
    let shape = LedgerShape {
        blocks: ledger_gb * 1_024, // ~1 MiB blocks
        mean_body_bytes: 1 << 20,
    };
    let mut table = Table::new(
        format!("plan: {ledger_gb} GiB ledger, {nodes} nodes, {budget_gb} GiB/node budget"),
        ["configuration", "per-node storage", "fits?"],
    );
    table.row([
        "full replication".to_string(),
        format_bytes(full_replication_per_node(shape) as u64),
        fits(full_replication_per_node(shape), budget),
    ]);
    table.row([
        "RapidChain, committees of 250".to_string(),
        format_bytes(rapidchain_per_node(shape, nodes, 250) as u64),
        fits(rapidchain_per_node(shape, nodes, 250), budget),
    ]);
    for c in [16usize, 32, 64, 128] {
        for r in [1usize, 2] {
            let bytes = ici_per_node(shape, c, r);
            table.row([
                format!("ICIStrategy c={c}, r={r}"),
                format_bytes(bytes as u64),
                fits(bytes, budget),
            ]);
        }
    }
    println!("{table}");
    Ok(())
}

fn fits(bytes: f64, budget: u64) -> String {
    if (bytes as u64) <= budget {
        "yes"
    } else {
        "no"
    }
    .to_string()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest.to_vec()),
        None => {
            print!("{HELP}");
            return ExitCode::SUCCESS;
        }
    };
    let result = match command {
        "simulate" => parse_flags(&rest).and_then(cmd_simulate),
        "compare" => parse_flags(&rest).and_then(cmd_compare),
        "plan" => parse_flags(&rest).and_then(cmd_plan),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n\n{HELP}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
