//! **icistrategy** — a reproduction of *"A Multi-node Collaborative
//! Storage Strategy via Clustering in Blockchain Network"* (Li, Qin, Liu &
//! Chu, ICDCS 2020).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`crypto`] | `ici-crypto` | SHA-256, HMAC, Merkle trees, SimSig, GF(256) + Reed–Solomon, hash lotteries |
//! | [`chain`] | `ici-chain` | transactions, blocks, state, stores, validation, genesis |
//! | [`net`] | `ici-net` | discrete-event WAN simulator with byte-exact metering |
//! | [`cluster`] | `ici-cluster` | latency-aware clustering and membership |
//! | [`storage`] | `ici-storage` | block→owner assignment, integrity audit, recovery planning |
//! | [`consensus`] | `ici-consensus` | PBFT-style commit, gossip, IDA-gossip, PoW-lite |
//! | [`core`] | `ici-core` | **the paper's contribution**: the ICIStrategy network |
//! | [`baselines`] | `ici-baselines` | full replication and RapidChain comparators |
//! | [`workload`] | `ici-workload` | deterministic transaction generators |
//! | [`sim`] | `ici-sim` | experiment runners, statistics, tables |
//! | [`faults`] | `ici-faults` | seed-deterministic fault plans, schedulers, injectors |
//! | [`telemetry`] | `ici-telemetry` | spans, counters, histograms, profiling export |
//!
//! # Quickstart
//!
//! ```
//! use icistrategy::core::config::IciConfig;
//! use icistrategy::core::network::IciNetwork;
//! use icistrategy::workload::{WorkloadConfig, WorkloadGenerator};
//!
//! // 32 nodes in clusters of 8, every block stored on 2 nodes per cluster.
//! let config = IciConfig::builder()
//!     .nodes(32)
//!     .cluster_size(8)
//!     .replication(2)
//!     .build()
//!     .expect("valid configuration");
//! let mut network = IciNetwork::new(config)?;
//!
//! let mut workload = WorkloadGenerator::new(WorkloadConfig::default());
//! for _ in 0..3 {
//!     network.propose_block(workload.batch(10))?;
//! }
//!
//! // Every cluster still collectively holds the whole chain, while each
//! // node stores only a fraction of it.
//! assert!(network.audit_all().iter().all(|r| r.is_intact()));
//! assert!(network.storage_stats().mean < network.full_replica_bytes() as f64);
//! # Ok::<(), icistrategy::core::error::IciError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ici_baselines as baselines;
pub use ici_chain as chain;
pub use ici_cluster as cluster;
pub use ici_consensus as consensus;
pub use ici_core as core;
pub use ici_crypto as crypto;
pub use ici_faults as faults;
pub use ici_net as net;
pub use ici_sim as sim;
pub use ici_storage as storage;
pub use ici_telemetry as telemetry;
pub use ici_workload as workload;

/// Convenience re-exports of the types most programs start from.
pub mod prelude {
    pub use ici_baselines::analytic::LedgerShape;
    pub use ici_baselines::{
        FullConfig, FullReplicationNetwork, RapidChainConfig, RapidChainNetwork,
    };
    pub use ici_chain::{Address, Block, BlockHeader, GenesisConfig, Transaction, WorldState};
    pub use ici_cluster::{ClusterId, JoinPolicy};
    pub use ici_core::{Assignment, Clustering, IciConfig, IciError, IciNetwork, QueryTier};
    pub use ici_crypto::{Digest, Keypair, Sha256};
    pub use ici_faults::{FaultPlan, FaultPlanConfig, FaultScheduler};
    pub use ici_net::{Coord, NodeId};
    pub use ici_sim::fault_run::{run_ici_under_faults, FaultProfile};
    pub use ici_sim::runner::{run_full, run_ici, run_rapidchain};
    pub use ici_workload::{WorkloadConfig, WorkloadGenerator};
}
